//! The full Appendix A discovery pipeline, end to end — exactly the chain
//! the paper runs against RIPEstat + RIS archives, here against simulated
//! collector data:
//!
//! 1. simulate a multi-day prefix lifecycle (announced for days, withdrawn,
//!    later re-announced);
//! 2. aggregate the collector feed into **day-granularity visibility**
//!    (RIPEstat Routing History);
//! 3. flag potential withdrawals via the paper's `>0.9 → <0.7` rule;
//! 4. drill into the update stream around the flagged day, estimate the
//!    withdrawal instant from the 5-in-20s burst, and compute per-peer
//!    convergence.
//!
//! Run: `cargo run --release -p bobw-bench --bin routing_history`

use bobw_bench::{parse_cli, write_json};
use bobw_bgp::{OriginConfig, Standalone};
use bobw_event::{RngFactory, SimDuration, SimTime};
use bobw_measure::{
    daily_visibility, estimate_event_time, flag_potential_withdrawals, per_peer_convergence,
    pick_collector_peers, Cdf, Collector,
};
use bobw_net::Prefix;
use bobw_topology::{attach_origin, generate, OriginProfile};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct HistoryReport {
    visibility: Vec<f64>,
    flagged_days: Vec<usize>,
    estimated_withdrawal_s: Option<f64>,
    true_withdrawal_s: f64,
    convergence_p50: f64,
    convergence_p90: f64,
}

fn main() {
    let cli = parse_cli();
    let cfg = cli.scale.config(cli.seed);
    let rng = RngFactory::new(cli.seed);
    let (mut topo, _cdn) = generate(&cfg.gen, &rng);
    let origin = attach_origin(&mut topo, OriginProfile::Hypergiant, &rng, 0);
    let peers = pick_collector_peers(&topo, 3);
    let collector = Collector::new(peers.clone(), &rng);
    let prefix: Prefix = "184.164.248.0/24".parse().unwrap();

    // Lifecycle: announce on day 0, withdraw mid-day-2, re-announce day 4.
    let mut sim = Standalone::new(&topo, cfg.timing.clone(), &rng);
    sim.sim_mut().set_record_history(true);
    sim.announce(origin, prefix, OriginConfig::plain());
    sim.run_to_idle(cfg.max_events);
    let t_withdraw = SimTime::from_secs(2 * 86_400 + 41_234);
    sim.run_until(t_withdraw, cfg.max_events);
    sim.withdraw(origin, prefix);
    sim.run_to_idle(cfg.max_events);
    sim.run_until(SimTime::from_secs(4 * 86_400), cfg.max_events);
    sim.announce(origin, prefix, OriginConfig::plain());
    sim.run_until(SimTime::from_secs(5 * 86_400), cfg.max_events);

    let feed = collector.feed(sim.sim().history(), prefix);
    println!(
        "collector: {} peers, {} updates over 5 simulated days",
        peers.len(),
        feed.len()
    );

    // Step 2-3: day-granularity visibility and the paper's flag rule.
    let vis = daily_visibility(&feed, &peers, 5);
    println!("\nRouting-History visibility by day:");
    for (day, v) in vis.iter().enumerate() {
        println!("  day {day}: {:>5.1}% of peers", v * 100.0);
    }
    let flagged = flag_potential_withdrawals(&vis);
    println!("flagged as potentially withdrawn on day(s): {flagged:?}");

    // Step 4: drill into the updates *around the flagged day* (the paper
    // downloads updates from one day before to one day after the potential
    // withdrawal) and estimate the withdrawal instant.
    let window: Vec<_> = match flagged.first() {
        Some(&day) => {
            let lo = SimTime::from_secs((day as u64).saturating_sub(2) * 86_400);
            let hi = SimTime::from_secs((day as u64 + 1) * 86_400);
            feed.iter()
                .filter(|u| u.time >= lo && u.time <= hi)
                .cloned()
                .collect()
        }
        None => feed.clone(),
    };
    let est = estimate_event_time(&window, true);
    let (est_s, conv) = match est {
        Some(t) => {
            let conv: Vec<f64> = per_peer_convergence(&window, t)
                .into_iter()
                .map(|(_, d)| d.as_secs_f64())
                .collect();
            (Some(t.as_secs_f64()), conv)
        }
        None => (None, Vec::new()),
    };
    let cdf = Cdf::new(conv);
    println!(
        "\nburst-estimated withdrawal: {} (true: {:.0}s; error {})",
        est_s
            .map(|s| format!("{s:.0}s"))
            .unwrap_or_else(|| "not found".into()),
        t_withdraw.as_secs_f64(),
        est_s
            .map(|s| format!("{:.1}s", (s - t_withdraw.as_secs_f64()).abs()))
            .unwrap_or_else(|| "-".into()),
    );
    println!(
        "per-peer convergence from the estimate: p50 {:.1}s p90 {:.1}s (n={})",
        cdf.median().unwrap_or(f64::NAN),
        cdf.quantile(0.9).unwrap_or(f64::NAN),
        cdf.len()
    );

    // Sanity assertions: the pipeline must find the day-2 withdrawal and
    // nothing else.
    assert_eq!(flagged, vec![3], "visibility drop must land on day 3");
    assert!(vis[0] > 0.9 && vis[1] > 0.9, "announced days fully visible");
    assert!(vis[3] < 0.2, "withdrawn day near-invisible");
    assert!(vis[4] > 0.9, "re-announcement restores visibility");

    let report = HistoryReport {
        visibility: vis,
        flagged_days: flagged,
        estimated_withdrawal_s: est_s,
        true_withdrawal_s: t_withdraw.as_secs_f64(),
        convergence_p50: cdf.median().unwrap_or(f64::NAN),
        convergence_p90: cdf.quantile(0.9).unwrap_or(f64::NAN),
    };
    write_json(&cli, "routing_history", &report);
    let _ = SimDuration::ZERO;
}
