//! Figure 3 (Appendix A): convergence time of unicast prefix withdrawals
//! per ⟨collector peer, withdrawal event⟩, hypergiant-profile origins vs
//! PEERING-profile origins.
//!
//! Run: `cargo run --release -p bobw-bench --bin fig3 [--scale quick]`

use bobw_bench::appendix::withdrawal_convergence_instrumented;
use bobw_bench::{parse_cli, write_json, Scale};
use bobw_measure::{cdf_table, Cdf};
use bobw_topology::OriginProfile;

fn main() {
    let cli = parse_cli();
    let cfg = cli.scale.config(cli.seed);
    let instances = match cli.scale {
        Scale::Quick => 6,
        Scale::Eval => 16,
        Scale::Large => 24,
    };

    // Instances fan over --jobs threads; the fold is in instance order, so
    // the JSON is identical for any --jobs value.
    let (hyper, _) = withdrawal_convergence_instrumented(
        &cfg,
        &cfg.timing,
        OriginProfile::Hypergiant,
        instances,
        cli.jobs,
    );
    let (peering, _) = withdrawal_convergence_instrumented(
        &cfg,
        &cfg.timing,
        OriginProfile::PeeringTestbed,
        instances,
        cli.jobs,
    );

    let hc = Cdf::new(hyper.samples.clone());
    let pc = Cdf::new(peering.samples.clone());
    println!(
        "{}",
        cdf_table(
            "Figure 3 — unicast withdrawal convergence (s) per <collector peer, event>",
            &[
                ("hypergiant-profile".to_string(), &hc),
                ("peering-profile".to_string(), &pc),
            ]
        )
    );
    let est_err = Cdf::new(
        hyper
            .estimator_error_secs
            .iter()
            .chain(&peering.estimator_error_secs)
            .copied()
            .collect(),
    );
    println!(
        "burst-estimator error vs true withdrawal time: median {:.1}s (paper: ≤10s median)",
        est_err.median().unwrap_or(f64::NAN)
    );

    write_json(&cli, "fig3", &vec![hyper, peering]);
}
