//! Perf regression gate: diffs a fresh `BENCH_repro_all.json` against the
//! checked-in `BENCH_baseline.json`.
//!
//! Three aggregate metrics are compared, each within a configurable
//! relative tolerance (regressions fail, improvements always pass):
//!
//! - **events/sec** — total simulator events over batch wall time; the
//!   headline throughput of the runner.
//! - **wall time** — end-to-end elapsed micros across all batches.
//! - **peak queue depth** — max event-queue high-water mark over all
//!   cells; deterministic for a fixed scale/seed, so a change means the
//!   simulation itself changed shape, not just the host.
//!
//! Exit status: 0 when every aggregate metric is within tolerance, 1 on
//! regression, 2 on usage/parse errors. The per-technique drill-down is
//! informational only (small per-technique samples are noisier than any
//! tolerance worth gating on). CI's `perf-smoke` job runs this as a hard
//! gate at `--tolerance 0.10` and publishes the drill-down table in the
//! job summary.
//!
//! Regenerate the baseline after an intentional perf change:
//!
//! ```text
//! cargo run --release --bin repro_all -- --quick 10 --seed 42
//! cargo run --release --bin bench_gate -- --write-baseline
//! ```

use std::process::exit;

use serde::Value;

struct Args {
    bench: String,
    baseline: String,
    /// Relative tolerance, e.g. 0.5 = a metric may regress by up to 50%.
    tolerance: f64,
    write_baseline: bool,
}

const USAGE: &str =
    "usage: bench_gate [--bench FILE] [--baseline FILE] [--tolerance FRAC] [--write-baseline]";

fn parse_args() -> Args {
    let mut args = Args {
        bench: "BENCH_repro_all.json".to_string(),
        baseline: "BENCH_baseline.json".to_string(),
        tolerance: 0.5,
        write_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value\n{USAGE}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--bench" => args.bench = val("--bench"),
            "--baseline" => args.baseline = val("--baseline"),
            "--tolerance" => {
                let raw = val("--tolerance");
                args.tolerance = raw.parse().unwrap_or_else(|_| {
                    eprintln!("error: --tolerance must be a fraction, got '{raw}'");
                    exit(2);
                });
            }
            "--write-baseline" => args.write_baseline = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => {
                eprintln!("error: unknown flag '{other}'\n{USAGE}");
                exit(2);
            }
        }
    }
    args
}

/// Aggregates for one technique's cells (summed cell wall time, not batch
/// elapsed — per-technique cells interleave inside shared batches).
#[derive(Default, Clone)]
struct TechMetrics {
    cells: usize,
    events: u64,
    cell_micros: u64,
}

impl TechMetrics {
    fn events_per_sec(&self) -> f64 {
        let secs = self.cell_micros as f64 / 1e6;
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

/// The aggregate metrics of one `PerfLog` dump.
struct Metrics {
    cells: usize,
    total_events: u64,
    wall_micros: u64,
    peak_queue_depth: u64,
    by_technique: std::collections::BTreeMap<String, TechMetrics>,
}

impl Metrics {
    fn events_per_sec(&self) -> f64 {
        let secs = self.wall_micros as f64 / 1e6;
        if secs > 0.0 {
            self.total_events as f64 / secs
        } else {
            0.0
        }
    }
}

fn load_metrics(path: &str) -> Result<Metrics, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let root = serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let wall_micros = root
        .get("elapsed_micros")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{path}: missing 'elapsed_micros'"))?;
    let cells = root
        .get("cells")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: missing 'cells' array"))?;
    let mut total_events = 0u64;
    let mut peak_queue_depth = 0u64;
    let mut by_technique: std::collections::BTreeMap<String, TechMetrics> = Default::default();
    for (i, cell) in cells.iter().enumerate() {
        let events = cell
            .get("events_processed")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{path}: cell {i} missing 'events_processed'"))?;
        total_events += events;
        let depth = cell
            .get("peak_queue_depth")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{path}: cell {i} missing 'peak_queue_depth'"))?;
        peak_queue_depth = peak_queue_depth.max(depth);
        let technique = cell
            .get("technique")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: cell {i} missing 'technique'"))?;
        let micros = cell
            .get("wall_micros")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{path}: cell {i} missing 'wall_micros'"))?;
        let t = by_technique.entry(technique.to_string()).or_default();
        t.cells += 1;
        t.events += events;
        t.cell_micros += micros;
    }
    Ok(Metrics {
        cells: cells.len(),
        total_events,
        wall_micros,
        peak_queue_depth,
        by_technique,
    })
}

/// One gate line. `higher_is_better` picks the regression direction; a
/// metric only fails when it moves the *bad* way by more than `tol`.
fn check(name: &str, base: f64, cur: f64, higher_is_better: bool, tol: f64) -> bool {
    let delta = if base != 0.0 {
        (cur - base) / base
    } else {
        0.0
    };
    let regressed = if higher_is_better {
        delta < -tol
    } else {
        delta > tol
    };
    let verdict = if regressed { "FAIL" } else { "ok" };
    println!(
        "{name:<18} baseline {base:>14.1}  current {cur:>14.1}  delta {delta:>+8.1}%  {verdict}",
        delta = delta * 100.0
    );
    !regressed
}

/// A drill-down line: same layout as [`check`] but never gates.
fn show(name: &str, base: f64, cur: f64) {
    let delta = if base != 0.0 {
        (cur - base) / base
    } else {
        0.0
    };
    println!(
        "{name:<18} baseline {base:>14.1}  current {cur:>14.1}  delta {delta:>+8.1}%",
        delta = delta * 100.0
    );
}

fn main() {
    let args = parse_args();

    if args.write_baseline {
        match std::fs::copy(&args.bench, &args.baseline) {
            Ok(_) => {
                println!("baseline updated: {} -> {}", args.bench, args.baseline);
                return;
            }
            Err(e) => {
                eprintln!("error: cannot write baseline: {e}");
                exit(2);
            }
        }
    }

    let base = load_metrics(&args.baseline).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(2);
    });
    let cur = load_metrics(&args.bench).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(2);
    });

    println!(
        "bench gate: {} ({} cells) vs {} ({} cells), tolerance {:.0}%",
        args.bench,
        cur.cells,
        args.baseline,
        base.cells,
        args.tolerance * 100.0
    );
    if cur.cells != base.cells {
        // Different grid shapes make the wall-time comparison meaningless;
        // call that out but still print the table for the log.
        println!(
            "warning: cell count differs ({} vs {}) — was the scale changed without refreshing the baseline?",
            cur.cells, base.cells
        );
    }

    let mut ok = true;
    ok &= check(
        "events/sec",
        base.events_per_sec(),
        cur.events_per_sec(),
        true,
        args.tolerance,
    );
    ok &= check(
        "wall micros",
        base.wall_micros as f64,
        cur.wall_micros as f64,
        false,
        args.tolerance,
    );
    ok &= check(
        "peak queue depth",
        base.peak_queue_depth as f64,
        cur.peak_queue_depth as f64,
        false,
        args.tolerance,
    );

    // Per-technique drill-down: a regression above is localized here to
    // one simulator path (a technique maps onto the announcement shapes
    // and reaction machinery it exercises). Events/sec uses summed
    // per-cell wall time, since cells of different techniques interleave
    // within one batch. Informational only — a single technique's
    // cell-summed wall time is a much smaller sample than the batch
    // aggregate and swings well past any tolerance tight enough to be a
    // useful headline gate, so these lines never flip the exit status.
    println!("\nper-technique drill-down (informational):");
    for (tech, b) in &base.by_technique {
        let Some(c) = cur.by_technique.get(tech) else {
            println!(
                "{tech:<26} gone from current run ({} baseline cells)",
                b.cells
            );
            continue;
        };
        if c.cells != b.cells {
            println!(
                "{tech:<26} cell count changed ({} -> {}), skipping comparison",
                b.cells, c.cells
            );
            continue;
        }
        show(
            &format!("{tech} ev/s"),
            b.events_per_sec(),
            c.events_per_sec(),
        );
        show(
            &format!("{tech} wall us"),
            b.cell_micros as f64,
            c.cell_micros as f64,
        );
    }
    for tech in cur.by_technique.keys() {
        if !base.by_technique.contains_key(tech) {
            println!("{tech:<26} new since baseline (no comparison)");
        }
    }
    println!();

    if ok {
        println!("bench gate: PASS");
    } else {
        println!("bench gate: FAIL (regenerate the baseline with --write-baseline if intentional)");
        exit(1);
    }
}
