//! Table 1: per-site traffic control. Row 1: of the targets within 50 ms
//! of the site, the % anycast routes to a *different* site. Rows 2-3: of
//! those, the % proactive-prepending steers to the site with 3 and 5
//! prepends.
//!
//! Run: `cargo run --release -p bobw-bench --bin table1 [--scale quick]`

use bobw_bench::{compute_table1_dispatch, parse_cli, run_or_exit, write_json};
use bobw_core::Testbed;
use bobw_measure::percent;

fn main() {
    let cli = parse_cli();
    let mut dispatch = cli.dispatch();
    let testbed = Testbed::new(cli.scale.config(cli.seed));
    let (table, _) = run_or_exit(compute_table1_dispatch(&testbed, &[3, 5], &mut dispatch));

    // Paper-style layout: sites as columns.
    let names = &table.site_order;
    let header: Vec<String> = names.to_vec();
    println!("Table 1 — traffic control under proactive-prepending");
    println!("{:<22} {}", "", header.join("  "));
    let row = |label: &str, f: &dyn Fn(&str) -> String| {
        let cells: Vec<String> = names.iter().map(|n| format!("{:>4}", f(n))).collect();
        println!("{label:<22} {}", cells.join("  "));
    };
    row("not routed by anycast", &|n| percent(table.rows[n].0));
    row("prepend 3", &|n| percent(table.rows[n].1[0].1));
    row("prepend 5", &|n| percent(table.rows[n].1[1].1));

    write_json(&cli, "table1", &table);
    dispatch.finish();
}
