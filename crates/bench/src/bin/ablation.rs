//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **WRATE** (per-peer MRAI pacing of withdrawals): flipping it off
//!    collapses path exploration and with it the superprefix/anycast gap —
//!    showing the convergence regime the paper's numbers depend on.
//! 2. **MRAI band**: halving/doubling scales withdrawal convergence almost
//!    linearly but barely touches fresh-announcement propagation.
//! 3. **Detection delay**: reactive-anycast's reconnection tracks the CDN's
//!    outage-detection latency ("CDNs need to make new announcements
//!    quickly after the detection of an outage", §4).
//! 4. **Backup de-preferencing mechanism**: prepending vs selective
//!    prepending vs MED (§4's aside) — control and failover side by side.
//! 5. **Failure mode**: the paper assumes the failing site withdraws its
//!    announcements (§4); a silent crash leaves discovery to the BGP hold
//!    timer (90 s default) unless the operator runs BFD-style detection.
//! 6. **Route-flap damping**: a site failure *is* a flap; routers that
//!    dampen the withdrawn prefix also suppress the valid routes
//!    reactive-anycast injects moments later — an interaction the paper
//!    does not discuss (and a reason RIPE-580 discourages damping).
//!
//! Run: `cargo run --release -p bobw-bench --bin ablation [--scale quick]`

use bobw_bench::{parse_cli, run_or_exit, write_json, Dispatch};
use bobw_bgp::DampingConfig;
use bobw_core::{FailureMode, ReactionFault, Technique, Testbed};
use bobw_dist::{CellOutput, CellSpec};
use bobw_event::SimDuration;
use bobw_measure::Cdf;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct AblationRow {
    study: String,
    variant: String,
    technique: String,
    control_fraction: f64,
    reconnection_p50: f64,
    failover_p50: f64,
    failover_p90: f64,
}

/// Runs `technique` against each named site through the dispatcher (local
/// threads or remote workers); results are folded in site order, so the
/// aggregate is independent of scheduling and dispatch mode.
fn site_results(
    testbed: &Testbed,
    technique: &Technique,
    sites: &[&str],
    dispatch: &mut Dispatch,
) -> Vec<bobw_core::FailoverResult> {
    let cells: Vec<CellSpec> = sites
        .iter()
        .map(|s| CellSpec::Failover {
            technique: technique.name(),
            site: s.to_string(),
        })
        .collect();
    run_or_exit(dispatch.run(testbed, &cells))
        .into_iter()
        .map(|o| match o {
            CellOutput::Failover(r, _) => r,
            CellOutput::Control(..) => {
                eprintln!("error: control output for a failover cell");
                std::process::exit(1);
            }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn measure(
    rows: &mut Vec<AblationRow>,
    study: &str,
    variant: &str,
    testbed: &Testbed,
    technique: &Technique,
    sites: &[&str],
    dispatch: &mut Dispatch,
) {
    let mut recon = Vec::new();
    let mut fail = Vec::new();
    let mut ctrl = 0.0;
    for r in site_results(testbed, technique, sites, dispatch) {
        recon.extend(r.reconnection_secs());
        fail.extend(r.failover_secs());
        ctrl += r.control_fraction();
    }
    let rc = Cdf::new(recon);
    let fc = Cdf::new(fail);
    let row = AblationRow {
        study: study.to_string(),
        variant: variant.to_string(),
        technique: technique.name(),
        control_fraction: ctrl / sites.len() as f64,
        reconnection_p50: rc.median().unwrap_or(f64::NAN),
        failover_p50: fc.median().unwrap_or(f64::NAN),
        failover_p90: fc.quantile(0.9).unwrap_or(f64::NAN),
    };
    println!(
        "{:<18} {:<22} {:<26} ctrl={:>4.0}% recon p50={:>6.1}s failover p50={:>6.1}s p90={:>6.1}s",
        row.study,
        row.variant,
        row.technique,
        row.control_fraction * 100.0,
        row.reconnection_p50,
        row.failover_p50,
        row.failover_p90
    );
    rows.push(row);
}

fn main() {
    let cli = parse_cli();
    let mut dispatch = cli.dispatch();
    let sites = ["bos", "slc", "msn"];
    let mut rows = Vec::new();

    // --- 1. WRATE on/off. ---
    for wrate in [true, false] {
        let mut cfg = cli.scale.config(cli.seed);
        cfg.timing.withdrawal_rate_limiting = wrate;
        let tb = Testbed::new(cfg);
        let variant = if wrate {
            "wrate-on (default)"
        } else {
            "wrate-off"
        };
        measure(
            &mut rows,
            "wrate",
            variant,
            &tb,
            &Technique::ProactiveSuperprefix,
            &sites,
            &mut dispatch,
        );
        measure(
            &mut rows,
            "wrate",
            variant,
            &tb,
            &Technique::Anycast,
            &sites,
            &mut dispatch,
        );
    }

    // --- 2. MRAI band scale. ---
    for (label, factor) in [
        ("mrai-x0.5", 0.5),
        ("mrai-x1 (default)", 1.0),
        ("mrai-x2", 2.0),
    ] {
        let mut cfg = cli.scale.config(cli.seed);
        cfg.timing.mrai_min_s *= factor;
        cfg.timing.mrai_max_s *= factor;
        let tb = Testbed::new(cfg);
        measure(
            &mut rows,
            "mrai",
            label,
            &tb,
            &Technique::ProactiveSuperprefix,
            &sites,
            &mut dispatch,
        );
    }

    // --- 3. Detection delay for reactive-anycast. ---
    for secs in [0u64, 2, 10, 30] {
        let mut cfg = cli.scale.config(cli.seed);
        cfg.detection_delay = SimDuration::from_secs(secs);
        let tb = Testbed::new(cfg);
        measure(
            &mut rows,
            "detection",
            &format!("detect={secs}s"),
            &tb,
            &Technique::ReactiveAnycast,
            &sites,
            &mut dispatch,
        );
    }

    // --- 4. Backup de-preferencing mechanism. ---
    {
        let tb = Testbed::new(cli.scale.config(cli.seed));
        for t in [
            Technique::ProactivePrepending {
                prepends: 3,
                selective: false,
            },
            Technique::ProactivePrepending {
                prepends: 3,
                selective: true,
            },
            Technique::ProactiveMed { med: 100 },
            Technique::ProactiveNoExport { prepends: 3 },
        ] {
            measure(
                &mut rows,
                "backup-mech",
                &t.name(),
                &tb,
                &t,
                &sites,
                &mut dispatch,
            );
        }
    }

    // --- 5. Failure mode: graceful withdrawal vs silent crash. ---
    for (label, mode, hold) in [
        ("graceful (default)", FailureMode::GracefulWithdrawal, 90.0),
        ("crash, hold=90s", FailureMode::SilentCrash, 90.0),
        ("crash, BFD 0.5s", FailureMode::SilentCrash, 0.5),
    ] {
        let mut cfg = cli.scale.config(cli.seed);
        cfg.failure_mode = mode;
        cfg.timing.hold_time_s = hold;
        let tb = Testbed::new(cfg);
        measure(
            &mut rows,
            "failure-mode",
            label,
            &tb,
            &Technique::Anycast,
            &sites,
            &mut dispatch,
        );
        measure(
            &mut rows,
            "failure-mode",
            label,
            &tb,
            &Technique::ReactiveAnycast,
            &sites,
            &mut dispatch,
        );
    }

    // --- 6. Route-flap damping vs reactive-anycast. A single clean
    // failure stays under Cisco-default thresholds; the operationally
    // scary case is a site that flapped (maintenance churn) before dying,
    // which pre-charges the penalty so the failure-time churn — including
    // reactive-anycast's *valid* replacement announcements — gets
    // suppressed. ---
    for (label, damping, flaps) in [
        ("off, clean failure", None, 0u32),
        ("on, clean failure", Some(DampingConfig::default()), 0),
        ("off, flappy site", None, 3),
        ("on, flappy site", Some(DampingConfig::default()), 3),
    ] {
        let mut cfg = cli.scale.config(cli.seed);
        cfg.timing.flap_damping = damping;
        cfg.pre_failure_flaps = flaps;
        let tb = Testbed::new(cfg);
        measure(
            &mut rows,
            "damping",
            label,
            &tb,
            &Technique::ReactiveAnycast,
            &sites,
            &mut dispatch,
        );
    }

    // --- 7. Risk made measurable: what a botched reactive-anycast
    // reconfiguration costs (Table 2's "risk" column; §4 calls the global
    // reconfiguration "operationally treacherous"). ---
    for (label, fault) in [
        ("clean reaction", None),
        ("3 sites skipped", Some(ReactionFault::SkipSites(3))),
        ("all sites skipped", Some(ReactionFault::SkipSites(7))),
        ("wrong prefix (typo)", Some(ReactionFault::WrongPrefix)),
    ] {
        let mut cfg = cli.scale.config(cli.seed);
        cfg.reaction_fault = fault;
        let tb = Testbed::new(cfg);
        let mut never = 0usize;
        let mut total = 0usize;
        let mut fail = Vec::new();
        for r in site_results(&tb, &Technique::ReactiveAnycast, &sites, &mut dispatch) {
            never += r
                .outcomes
                .iter()
                .filter(|o| o.reconnection.is_none())
                .count();
            total += r.outcomes.len();
            fail.extend(r.failover_secs());
        }
        let fc = Cdf::new(fail);
        println!(
            "{:<18} {:<22} {:<26} never-reconnected={:>3}/{:<4} failover p50={:>6.1}s p90={:>6.1}s",
            "risk",
            label,
            "reactive-anycast",
            never,
            total,
            fc.median().unwrap_or(f64::NAN),
            fc.quantile(0.9).unwrap_or(f64::NAN),
        );
        rows.push(AblationRow {
            study: "risk".into(),
            variant: label.into(),
            technique: "reactive-anycast".into(),
            control_fraction: 1.0 - never as f64 / total.max(1) as f64,
            reconnection_p50: f64::NAN,
            failover_p50: fc.median().unwrap_or(f64::NAN),
            failover_p90: fc.quantile(0.9).unwrap_or(f64::NAN),
        });
    }

    write_json(&cli, "ablation", &rows);
    dispatch.finish();
}
