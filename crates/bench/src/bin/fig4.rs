//! Figure 4 (Appendix B): propagation time of anycast announcements per
//! ⟨collector peer, announcement⟩ — a Manycast2-like population (several
//! independent origins announcing one prefix) vs PEERING-profile
//! announcements.
//!
//! Run: `cargo run --release -p bobw-bench --bin fig4 [--scale quick]`

use bobw_bench::appendix::announcement_propagation_instrumented;
use bobw_bench::{parse_cli, write_json, Scale};
use bobw_measure::{cdf_table, Cdf};
use bobw_topology::OriginProfile;

fn main() {
    let cli = parse_cli();
    let cfg = cli.scale.config(cli.seed);
    let instances = match cli.scale {
        Scale::Quick => 6,
        Scale::Eval => 16,
        Scale::Large => 24,
    };

    // Manycast2-like: 3 hypergiant-profile origins anycasting one prefix.
    // Instances fan over --jobs threads; the fold is in instance order, so
    // the JSON is identical for any --jobs value.
    let (manycast, _) = announcement_propagation_instrumented(
        &cfg,
        &cfg.timing,
        OriginProfile::Hypergiant,
        3,
        instances,
        cli.jobs,
    );
    // PEERING-like: a single testbed-profile origin.
    let (peering, _) = announcement_propagation_instrumented(
        &cfg,
        &cfg.timing,
        OriginProfile::PeeringTestbed,
        1,
        instances,
        cli.jobs,
    );

    let mc = Cdf::new(manycast.samples.clone());
    let pc = Cdf::new(peering.samples.clone());
    println!(
        "{}",
        cdf_table(
            "Figure 4 — anycast announcement propagation (s) per <collector peer, announcement>",
            &[
                ("manycast2-like".to_string(), &mc),
                ("peering".to_string(), &pc),
            ]
        )
    );
    println!(
        "medians: manycast2-like {:.1}s, peering {:.1}s (paper: both <10s)",
        mc.median().unwrap_or(f64::NAN),
        pc.median().unwrap_or(f64::NAN)
    );

    write_json(&cli, "fig4", &vec![manycast, peering]);
}
