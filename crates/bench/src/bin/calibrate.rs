//! Timing calibration tool: checks the raw BGP dynamics against the
//! paper's published scales before any experiment runs.
//!
//! * Unicast withdrawal convergence (Appendix A / Figure 3 target:
//!   ~100 s median, ~400 s p90 per observer).
//! * Fresh anycast announcement propagation (Appendix B / Figure 4 target:
//!   <10 s median per observer).
//!
//! Run: `cargo run --release -p bobw-bench --bin calibrate`

use bobw_bgp::{BgpTimingConfig, OriginConfig, Standalone};
use bobw_event::{RngFactory, SimTime};
use bobw_net::Prefix;
use bobw_topology::{generate, GenConfig};

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let cfg = GenConfig::eval();
    let rng = RngFactory::new(42);
    let (topo, cdn) = generate(&cfg, &rng);
    println!(
        "topology: {} nodes, {} links",
        topo.len(),
        topo.link_count()
    );
    let prefix: Prefix = "184.164.244.0/24".parse().unwrap();
    let timing = BgpTimingConfig::default();

    // --- Anycast propagation: announce at one site, fresh network. ---
    let mut props: Vec<f64> = Vec::new();
    for (i, &site) in cdn.site_nodes().iter().enumerate() {
        let mut s = Standalone::new(&topo, timing.clone(), &rng.derive("prop", i as u64));
        s.sim_mut().set_record_history(true);
        s.announce(site, prefix, OriginConfig::plain());
        let t0 = SimTime::ZERO;
        s.run_to_idle(50_000_000);
        // First time each node got a best route.
        let mut first = std::collections::HashMap::new();
        for rc in s.sim().history() {
            if rc.new.is_some() {
                first.entry(rc.node).or_insert(rc.time);
            }
        }
        props.extend(first.values().map(|t| t.since(t0).as_secs_f64()));
        println!(
            "prop site {}: events={} now={}",
            cdn.name(bobw_topology::SiteId(i as u8)),
            s.sim().stats().messages,
            s.now()
        );
    }
    props.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "anycast announcement propagation: n={} p50={:.1}s p90={:.1}s p99={:.1}s",
        props.len(),
        quantile(&props, 0.5),
        quantile(&props, 0.9),
        quantile(&props, 0.99)
    );

    // --- Unicast withdrawal convergence. ---
    let mut convs: Vec<f64> = Vec::new();
    for (i, &site) in cdn.site_nodes().iter().enumerate() {
        let mut s = Standalone::new(&topo, timing.clone(), &rng.derive("wd", i as u64));
        s.announce(site, prefix, OriginConfig::plain());
        s.run_to_idle(50_000_000);
        let t0 = s.now();
        s.sim_mut().set_record_history(true);
        s.withdraw(site, prefix);
        let out = s.run_to_idle(50_000_000);
        // Per-node convergence: last change time after withdrawal.
        let mut last = std::collections::HashMap::new();
        for rc in s.sim().history() {
            last.insert(rc.node, rc.time);
        }
        convs.extend(last.values().map(|t| t.since(t0).as_secs_f64()));
        // Exploration depth diagnostics: best-route changes per node during
        // convergence, and update-vs-withdraw mix.
        let mut per_node = std::collections::HashMap::new();
        let mut to_some = 0u64;
        let mut to_none = 0u64;
        for rc in s.sim().history() {
            *per_node.entry(rc.node).or_insert(0u64) += 1;
            if rc.new.is_some() {
                to_some += 1;
            } else {
                to_none += 1;
            }
        }
        let max_changes = per_node.values().max().copied().unwrap_or(0);
        let avg: f64 = per_node.values().sum::<u64>() as f64 / per_node.len().max(1) as f64;
        println!(
            "withdraw site {}: outcome={:?} events={} took {:.0}s; changes/node avg={:.1} max={} (explore={} drop={})",
            cdn.name(bobw_topology::SiteId(i as u8)),
            out,
            s.sim().stats().messages,
            s.now().since(t0).as_secs_f64(),
            avg,
            max_changes,
            to_some,
            to_none
        );
    }
    convs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "unicast withdrawal convergence: n={} p50={:.1}s p90={:.1}s p99={:.1}s max={:.1}s",
        convs.len(),
        quantile(&convs, 0.5),
        quantile(&convs, 0.9),
        quantile(&convs, 0.99),
        convs.last().copied().unwrap_or(f64::NAN)
    );
}
