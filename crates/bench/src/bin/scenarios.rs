//! Scenario grid: every technique under every catalog scenario.
//!
//! Loads the `scenarios/` catalog (see EXPERIMENTS.md "Scenario catalog"),
//! then runs the ⟨technique × scenario⟩ grid — each scenario across the
//! measured sites it names (`"$site"` fans over every site) — through the
//! same parallel/distributed runner as the paper figures (`--jobs N`,
//! `--dispatch tcp://…|unix://…`, byte-identical either way).
//!
//! Outputs, per scenario, `results/scenario_<name>.json` with the
//! per-technique reconnection/failover series, plus a cross-scenario
//! resilience matrix in `results/scenario_matrix.json` and a markdown
//! rendering appended to `results/SUMMARY.md`.
//!
//! Run: `cargo run --release -p bobw-bench --bin scenarios -- --scale quick`

use std::collections::BTreeMap;
use std::fmt::Write as _;

use bobw_bench::{
    load_queue_hints, parse_cli, run_or_exit, write_json, CellRecord, PerfLog, TechniqueSeries,
    BASELINE_FILE,
};
use bobw_core::{FailoverResult, SessionModel, Technique, Testbed};
use bobw_dist::{CellOutput, CellSpec};
use bobw_measure::{cdf_row, percent};
use bobw_scenario::{catalog_files, load_file};
use serde::Serialize;

/// One ⟨scenario, technique⟩ cell of the resilience matrix.
#[derive(Debug, Clone, Serialize)]
struct MatrixCell {
    /// Controllable targets probed through the scenario.
    targets: usize,
    /// Fraction of them that reconnected within the probing window.
    reconnected_fraction: f64,
    median_reconnection_s: Option<f64>,
    median_failover_s: Option<f64>,
}

impl MatrixCell {
    fn from_series(s: &TechniqueSeries) -> MatrixCell {
        MatrixCell {
            targets: s.num_targets,
            reconnected_fraction: if s.num_targets == 0 {
                0.0
            } else {
                1.0 - s.never_reconnected as f64 / s.num_targets as f64
            },
            median_reconnection_s: s.reconnection_cdf().median(),
            median_failover_s: s.failover_cdf().median(),
        }
    }
}

fn main() {
    let cli = parse_cli();
    let mut dispatch = cli.dispatch();
    let files = run_or_exit(catalog_files(&cli.catalog));
    if files.is_empty() {
        eprintln!("no *.json scenarios in {}", cli.catalog.display());
        std::process::exit(2);
    }
    let mut techniques = Technique::figure2_set();
    techniques.push(Technique::Combined);
    let hints = load_queue_hints(BASELINE_FILE, cli.scale);

    let mut perf = PerfLog::new(cli.jobs);
    perf.scale = cli.scale.name().to_string();
    // Scenario name → technique name → matrix cell.
    let mut matrix: BTreeMap<String, BTreeMap<String, MatrixCell>> = BTreeMap::new();
    let mut md = String::new();
    let _ = writeln!(
        md,
        "\n## Scenario resilience matrix (scale {}, seed {})\n",
        cli.scale.name(),
        cli.seed
    );
    let _ = writeln!(md, "Reconnected fraction / median reconnection seconds.\n");
    let mut header = "| scenario |".to_string();
    let mut rule = "|---|".to_string();
    for t in &techniques {
        let _ = write!(header, " {} |", t.name());
        rule.push_str("---|");
    }
    let mut detail = String::new();
    let mut wrote_header = false;

    // Session-fault scenarios run twice — the abstract approximation and
    // the message-level FSMs — as adjacent `name` / `name+msg` matrix rows,
    // so the resilience matrix shows what the approximation misses (e.g.
    // damping/NOTIFICATION interaction only exists under message-level).
    let mut runs: Vec<(std::path::PathBuf, SessionModel, String)> = Vec::new();
    for path in &files {
        let scenario = run_or_exit(load_file(path));
        runs.push((path.clone(), SessionModel::Abstract, scenario.name.clone()));
        if scenario.uses_session_actions() {
            runs.push((
                path.clone(),
                SessionModel::MessageLevel,
                format!("{}+msg", scenario.name),
            ));
        }
    }

    for (si, (path, session_model, label)) in runs.iter().enumerate() {
        let scenario = run_or_exit(load_file(path));
        eprintln!(
            "[{}/{}] scenario {} ({} jobs) ...",
            si + 1,
            runs.len(),
            label,
            cli.jobs
        );
        let mut cfg = cli.scale.config(cli.seed);
        cfg.session_model = *session_model;
        // Catalog convention: `damping-*` scenarios study the interaction
        // with route-flap damping, so it comes on for them.
        if scenario.wants_damping() && cfg.timing.flap_damping.is_none() {
            cfg.timing.flap_damping = Some(bobw_bgp::DampingConfig::default());
        }
        cfg.scenario = Some(scenario.clone());
        let mut tb = Testbed::new(cfg);
        tb.prime_queue_hints(hints.clone());
        // "$site" fans the scenario over every site, like the paper grid;
        // a concrete site name pins it (e.g. a regional partition around
        // one deployment).
        let sites: Vec<String> = if scenario.site == "$site" {
            tb.cdn.sites().map(|s| tb.cdn.name(s).to_string()).collect()
        } else {
            vec![scenario.site.clone()]
        };
        let cells: Vec<CellSpec> = techniques
            .iter()
            .flat_map(|t| {
                sites.iter().map(move |s| CellSpec::Failover {
                    technique: t.name(),
                    site: s.clone(),
                })
            })
            .collect();
        let started = std::time::Instant::now();
        let outputs = run_or_exit(dispatch.run(&tb, &cells));
        perf.elapsed_micros += started.elapsed().as_micros() as u64;
        let mut grouped: Vec<Vec<FailoverResult>> = techniques.iter().map(|_| Vec::new()).collect();
        for (i, out) in outputs.into_iter().enumerate() {
            let ti = i / sites.len().max(1);
            let CellOutput::Failover(result, p) = out else {
                run_or_exit::<()>(Err(format!("cell {i}: control output for a failover cell")));
                unreachable!();
            };
            perf.cells.push(CellRecord {
                technique: techniques[ti].name(),
                site: result.site_name.clone(),
                seed: tb.cfg.seed,
                events_processed: p.events_processed,
                peak_queue_depth: p.peak_queue_depth,
                queue_capacity: p.queue_capacity,
                wall_micros: p.wall_micros,
            });
            grouped[ti].push(result);
        }
        let series: Vec<TechniqueSeries> = techniques
            .iter()
            .zip(&grouped)
            .map(|(t, results)| TechniqueSeries::from_results(t, results))
            .collect();
        write_json(&cli, &format!("scenario_{label}"), &series);

        let mut row = format!("| {label} |");
        let _ = writeln!(detail, "### {} — {}\n", label, scenario.description);
        let _ = writeln!(detail, "```");
        for s in &series {
            let cell = MatrixCell::from_series(s);
            let _ = write!(
                row,
                " {} / {} |",
                percent(cell.reconnected_fraction),
                cell.median_reconnection_s
                    .map(|m| format!("{m:.1}s"))
                    .unwrap_or_else(|| "—".to_string())
            );
            let _ = writeln!(
                detail,
                "{}",
                cdf_row(&format!("{} recon", s.technique), &s.reconnection_cdf())
            );
            matrix
                .entry(label.clone())
                .or_default()
                .insert(s.technique.clone(), cell);
        }
        let _ = writeln!(detail, "```\n");
        if !wrote_header {
            let _ = writeln!(md, "{header}");
            let _ = writeln!(md, "{rule}");
            wrote_header = true;
        }
        let _ = writeln!(md, "{row}");
    }
    md.push('\n');
    md.push_str(&detail);
    let _ = writeln!(md, "{}", perf.markdown_section());

    write_json(&cli, "scenario_matrix", &matrix);
    match serde_json::to_string_pretty(&perf) {
        Ok(s) => {
            if let Err(e) = std::fs::write("BENCH_scenarios.json", s) {
                eprintln!("warning: cannot write BENCH_scenarios.json: {e}");
            } else {
                eprintln!("wrote BENCH_scenarios.json");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize perf log: {e}"),
    }

    // Append to the summary (repro_all rewrites it wholesale; the scenario
    // matrix rides behind whatever is there).
    let _ = std::fs::create_dir_all(&cli.out_dir);
    let path = cli.out_dir.join("SUMMARY.md");
    let mut summary = std::fs::read_to_string(&path).unwrap_or_default();
    summary.push_str(&md);
    std::fs::write(&path, &summary).expect("write summary");
    println!("{md}");
    eprintln!("summary appended to {}", path.display());
    dispatch.finish();
}
