//! Figure 2: CDF of reconnection and failover time across
//! ⟨failed site, target⟩ for proactive-superprefix, reactive-anycast,
//! proactive-prepending (3) and anycast.
//!
//! Run: `cargo run --release -p bobw-bench --bin fig2 [--scale quick]`
//! Add the combined technique (§4's briefly-evaluated variant) with the
//! `--extended` behaviour of `repro_all`; here it is always included as a
//! fifth series since it costs one more run.

use bobw_bench::{parse_cli, run_failover_grid_dispatch, run_or_exit, write_json, TechniqueSeries};
use bobw_core::{Technique, Testbed};
use bobw_measure::cdf_table;

fn main() {
    let cli = parse_cli();
    let mut dispatch = cli.dispatch();
    let testbed = Testbed::new(cli.scale.config(cli.seed));
    eprintln!(
        "fig2: topology {} nodes / {} links, {} sites, {} jobs",
        testbed.topo.len(),
        testbed.topo.link_count(),
        testbed.cdn.num_sites(),
        cli.jobs
    );

    let mut techniques = Technique::figure2_set();
    techniques.push(Technique::Combined);

    // All ⟨technique, site⟩ cells share one work queue; the result order
    // (and hence the JSON) is identical for any --jobs value and any
    // dispatch mode.
    let (grouped, perf) = run_or_exit(run_failover_grid_dispatch(
        &testbed,
        &techniques,
        &mut dispatch,
    ));
    let mut series = Vec::new();
    for (t, results) in techniques.iter().zip(&grouped) {
        let s = TechniqueSeries::from_results(t, results);
        eprintln!(
            "  {:<26} targets={} never_reconnected={}",
            s.technique, s.num_targets, s.never_reconnected
        );
        series.push(s);
    }
    eprintln!(
        "fig2: {} cells in {:.1}s ({} events, peak queue {})",
        perf.cells.len(),
        perf.elapsed_micros as f64 / 1e6,
        perf.total_events(),
        perf.max_queue_depth()
    );

    let recon: Vec<(String, _)> = series
        .iter()
        .map(|s| (s.technique.clone(), s.reconnection_cdf()))
        .collect();
    let recon_refs: Vec<(String, &bobw_measure::Cdf)> =
        recon.iter().map(|(n, c)| (n.clone(), c)).collect();
    println!(
        "{}",
        cdf_table(
            "Figure 2a — reconnection time (s) across <failed site, target>",
            &recon_refs
        )
    );
    let fail: Vec<(String, _)> = series
        .iter()
        .map(|s| (s.technique.clone(), s.failover_cdf()))
        .collect();
    let fail_refs: Vec<(String, &bobw_measure::Cdf)> =
        fail.iter().map(|(n, c)| (n.clone(), c)).collect();
    println!(
        "{}",
        cdf_table(
            "Figure 2b — failover time (s) across <failed site, target>",
            &fail_refs
        )
    );

    write_json(&cli, "fig2", &series);
    dispatch.finish();
}
