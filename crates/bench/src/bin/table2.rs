//! Table 2: the control / availability / risk matrix — derived from
//! measured quantities (Figure 2 failover medians + Table 1 control
//! fractions + the DNS baseline), not asserted.
//!
//! Run: `cargo run --release -p bobw-bench --bin table2 [--scale quick]`

use bobw_bench::{
    compute_table1_dispatch, parse_cli, run_or_exit, run_technique_all_sites_dispatch, write_json,
    TechniqueSeries,
};
use bobw_core::{derive_tradeoffs, MeasuredTechnique, Technique, Testbed};
use bobw_measure::markdown_table;

fn main() {
    let cli = parse_cli();
    let mut dispatch = cli.dispatch();
    let testbed = Testbed::new(cli.scale.config(cli.seed));

    // Failover medians per technique (Figure 2 machinery).
    let mut failover_median = |t: &Technique| -> f64 {
        let (results, _) =
            run_or_exit(run_technique_all_sites_dispatch(&testbed, t, &mut dispatch));
        TechniqueSeries::from_results(t, &results)
            .failover_cdf()
            .median()
            .unwrap_or(f64::NAN)
    };
    let anycast_median = failover_median(&Technique::Anycast);
    let reactive_median = failover_median(&Technique::ReactiveAnycast);
    let superprefix_median = failover_median(&Technique::ProactiveSuperprefix);
    let prepending = Technique::ProactivePrepending {
        prepends: 3,
        selective: false,
    };
    let prepending_median = failover_median(&prepending);

    // Control fraction for prepending: mean over sites of the Table 1
    // steered fraction at 3 prepends.
    let (t1, _) = run_or_exit(compute_table1_dispatch(&testbed, &[3], &mut dispatch));
    let prepending_control =
        t1.rows.values().map(|(_, s)| s[0].1).sum::<f64>() / t1.rows.len().max(1) as f64;

    let measured = vec![
        MeasuredTechnique {
            technique: prepending.clone(),
            control_fraction: prepending_control,
            failover_median_s: Some(prepending_median),
        },
        MeasuredTechnique {
            technique: Technique::ReactiveAnycast,
            control_fraction: 1.0,
            failover_median_s: Some(reactive_median),
        },
        MeasuredTechnique {
            technique: Technique::ProactiveSuperprefix,
            control_fraction: 1.0,
            failover_median_s: Some(superprefix_median),
        },
        MeasuredTechnique {
            technique: Technique::Anycast,
            control_fraction: 0.0,
            failover_median_s: Some(anycast_median),
        },
        MeasuredTechnique {
            // Unicast's failover is DNS-bound (cache + TTL violations), not
            // BGP-bound: availability is rated "low" per the paper's rubric.
            technique: Technique::Unicast,
            control_fraction: 1.0,
            failover_median_s: None,
        },
    ];
    let rows = derive_tradeoffs(&measured, anycast_median);

    println!("Table 2 — CDN redirection technique tradeoffs (derived)");
    println!(
        "(measured failover medians: anycast={anycast_median:.1}s reactive={reactive_median:.1}s \
         prepending={prepending_median:.1}s superprefix={superprefix_median:.1}s; \
         prepending mean control={prepending_control:.2})"
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.technique.clone(),
                r.control.to_string(),
                r.availability.to_string(),
                r.risk.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["Technique", "Control", "Availability", "Risk"],
            &table_rows
        )
    );

    write_json(&cli, "table2", &rows);
    dispatch.finish();
}
