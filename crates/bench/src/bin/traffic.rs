//! Traffic grid: ⟨technique × load scenario⟩ with the demand-driven data
//! plane enabled.
//!
//! Runs the load-centric catalog scenarios (the baseline site failure, a
//! flash crowd, the Sinha-style overload cascade, and a DDoS
//! absorb-vs-shed drill) under each steering technique with
//! `cfg.traffic = Some(default)`, through the same parallel/distributed
//! runner as the paper figures (`--jobs N`, `--dispatch …`,
//! byte-identical either way).
//!
//! Outputs, per scenario, `results/traffic_<name>.json` with the
//! demand-weighted per-technique series, plus a cross-scenario matrix in
//! `results/traffic_matrix.json` extending the resilience matrix with the
//! load columns — demand-weighted reconnected fraction, weighted median
//! reconnection, peak post-event utilization, and shed fraction — and a
//! markdown rendering appended to `results/SUMMARY.md`.
//!
//! Run: `cargo run --release -p bobw-bench --bin traffic -- --scale quick`

use std::collections::BTreeMap;
use std::fmt::Write as _;

use bobw_bench::{
    load_queue_hints, parse_cli, run_or_exit, write_json, CellRecord, PerfLog,
    WeightedTechniqueSeries, BASELINE_FILE,
};
use bobw_core::{FailoverResult, Technique, Testbed, TrafficConfig};
use bobw_dist::{CellOutput, CellSpec};
use bobw_measure::percent;
use bobw_scenario::load_file;
use serde::Serialize;

/// The load-centric slice of the catalog. Missing files are skipped with
/// a warning so a trimmed catalog still produces the scenarios it has.
const LOAD_SCENARIOS: &[&str] = &[
    "site-failure",
    "flash-crowd",
    "overload-cascade",
    "ddos-absorb-vs-shed",
];

/// One ⟨scenario, technique⟩ cell of the traffic matrix.
#[derive(Debug, Clone, Serialize)]
struct TrafficMatrixCell {
    /// Controllable targets probed through the scenario.
    targets: usize,
    /// Demand-weighted fraction of them that reconnected in the window.
    reconnected_weight_fraction: f64,
    /// Demand-weighted median reconnection time.
    weighted_median_reconnection_s: Option<f64>,
    /// Worst post-event site utilization (load/capacity; > 1 = overload).
    peak_utilization: Option<f64>,
    /// Shed demand as a fraction of offered demand.
    shed_fraction: Option<f64>,
}

impl TrafficMatrixCell {
    fn from_series(s: &WeightedTechniqueSeries) -> TrafficMatrixCell {
        TrafficMatrixCell {
            targets: s.num_targets,
            reconnected_weight_fraction: s.reconnected_weight_fraction(),
            weighted_median_reconnection_s: s.reconnection_cdf().median(),
            peak_utilization: s.peak_utilization,
            shed_fraction: s.shed_fraction,
        }
    }
}

fn main() {
    let cli = parse_cli();
    let mut dispatch = cli.dispatch();
    let mut scenarios = Vec::new();
    for name in LOAD_SCENARIOS {
        let path = cli.catalog.join(format!("{name}.json"));
        if !path.exists() {
            eprintln!("warning: skipping {name}: no {}", path.display());
            continue;
        }
        scenarios.push(run_or_exit(load_file(&path)));
    }
    if scenarios.is_empty() {
        eprintln!(
            "none of the load scenarios ({}) found in {}",
            LOAD_SCENARIOS.join(", "),
            cli.catalog.display()
        );
        std::process::exit(2);
    }
    let techniques = [
        Technique::Anycast,
        Technique::ReactiveAnycast,
        Technique::Combined,
    ];
    let hints = load_queue_hints(BASELINE_FILE, cli.scale);

    let mut perf = PerfLog::new(cli.jobs);
    perf.scale = cli.scale.name().to_string();
    // Scenario name → technique name → matrix cell.
    let mut matrix: BTreeMap<String, BTreeMap<String, TrafficMatrixCell>> = BTreeMap::new();
    let mut md = String::new();
    let _ = writeln!(
        md,
        "\n## Traffic & load matrix (scale {}, seed {})\n",
        cli.scale.name(),
        cli.seed
    );
    let _ = writeln!(
        md,
        "Demand-weighted reconnected fraction / peak post-event utilization \
         (>100% = overload) / shed fraction.\n"
    );
    let mut header = "| scenario |".to_string();
    let mut rule = "|---|".to_string();
    for t in &techniques {
        let _ = write!(header, " {} |", t.name());
        rule.push_str("---|");
    }
    let mut detail = String::new();

    for (si, scenario) in scenarios.iter().enumerate() {
        eprintln!(
            "[{}/{}] load scenario {} ({} jobs) ...",
            si + 1,
            scenarios.len(),
            scenario.name,
            cli.jobs
        );
        let mut cfg = cli.scale.config(cli.seed);
        cfg.scenario = Some(scenario.clone());
        cfg.traffic = Some(TrafficConfig::default());
        let mut tb = Testbed::new(cfg);
        tb.prime_queue_hints(hints.clone());
        let sites: Vec<String> = if scenario.site == "$site" {
            tb.cdn.sites().map(|s| tb.cdn.name(s).to_string()).collect()
        } else {
            vec![scenario.site.clone()]
        };
        let cells: Vec<CellSpec> = techniques
            .iter()
            .flat_map(|t| {
                sites.iter().map(move |s| CellSpec::Failover {
                    technique: t.name(),
                    site: s.clone(),
                })
            })
            .collect();
        let started = std::time::Instant::now();
        let outputs = run_or_exit(dispatch.run(&tb, &cells));
        perf.elapsed_micros += started.elapsed().as_micros() as u64;
        let mut grouped: Vec<Vec<FailoverResult>> = techniques.iter().map(|_| Vec::new()).collect();
        for (i, out) in outputs.into_iter().enumerate() {
            let ti = i / sites.len().max(1);
            let CellOutput::Failover(result, p) = out else {
                run_or_exit::<()>(Err(format!("cell {i}: control output for a failover cell")));
                unreachable!();
            };
            perf.cells.push(CellRecord {
                technique: techniques[ti].name(),
                site: result.site_name.clone(),
                seed: tb.cfg.seed,
                events_processed: p.events_processed,
                peak_queue_depth: p.peak_queue_depth,
                queue_capacity: p.queue_capacity,
                wall_micros: p.wall_micros,
            });
            grouped[ti].push(result);
        }
        let series: Vec<WeightedTechniqueSeries> = techniques
            .iter()
            .zip(&grouped)
            .map(|(t, results)| WeightedTechniqueSeries::from_results(t, results))
            .collect();
        write_json(&cli, &format!("traffic_{}", scenario.name), &series);

        let mut row = format!("| {} |", scenario.name);
        let _ = writeln!(detail, "### {} — {}\n", scenario.name, scenario.description);
        let _ = writeln!(detail, "```");
        for s in &series {
            let cell = TrafficMatrixCell::from_series(s);
            let _ = write!(
                row,
                " {} / {} / {} |",
                percent(cell.reconnected_weight_fraction),
                cell.peak_utilization
                    .map(percent)
                    .unwrap_or_else(|| "—".to_string()),
                cell.shed_fraction
                    .map(percent)
                    .unwrap_or_else(|| "—".to_string()),
            );
            let _ = writeln!(
                detail,
                "{:>24}: reconnected {} of demand, weighted median {}, \
                 peak util {}, shed {}, resteers {}",
                s.technique,
                percent(cell.reconnected_weight_fraction),
                cell.weighted_median_reconnection_s
                    .map(|m| format!("{m:.1}s"))
                    .unwrap_or_else(|| "—".to_string()),
                cell.peak_utilization
                    .map(|u| format!("{u:.2}"))
                    .unwrap_or_else(|| "—".to_string()),
                cell.shed_fraction
                    .map(percent)
                    .unwrap_or_else(|| "—".to_string()),
                s.resteers
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "—".to_string()),
            );
            matrix
                .entry(scenario.name.clone())
                .or_default()
                .insert(s.technique.clone(), cell);
        }
        let _ = writeln!(detail, "```\n");
        if si == 0 {
            let _ = writeln!(md, "{header}");
            let _ = writeln!(md, "{rule}");
        }
        let _ = writeln!(md, "{row}");
    }
    md.push('\n');
    md.push_str(&detail);
    let _ = writeln!(md, "{}", perf.markdown_section());

    write_json(&cli, "traffic_matrix", &matrix);
    match serde_json::to_string_pretty(&perf) {
        Ok(s) => {
            if let Err(e) = std::fs::write("BENCH_traffic.json", s) {
                eprintln!("warning: cannot write BENCH_traffic.json: {e}");
            } else {
                eprintln!("wrote BENCH_traffic.json");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize perf log: {e}"),
    }

    // Append to the summary (repro_all rewrites it wholesale; the traffic
    // matrix rides behind whatever is there).
    let _ = std::fs::create_dir_all(&cli.out_dir);
    let path = cli.out_dir.join("SUMMARY.md");
    let mut summary = std::fs::read_to_string(&path).unwrap_or_default();
    summary.push_str(&md);
    std::fs::write(&path, &summary).expect("write summary");
    println!("{md}");
    eprintln!("summary appended to {}", path.display());
    dispatch.finish();
}
