//! Figure 5 (Appendix C.2): reconnection and failover time for
//! proactive-prepending with 3 vs 5 prepends — the control/failover
//! tradeoff knob.
//!
//! Run: `cargo run --release -p bobw-bench --bin fig5 [--scale quick]`

use bobw_bench::{parse_cli, run_failover_grid_dispatch, run_or_exit, write_json, TechniqueSeries};
use bobw_core::{Technique, Testbed};
use bobw_measure::cdf_table;

fn main() {
    let cli = parse_cli();
    let mut dispatch = cli.dispatch();
    let testbed = Testbed::new(cli.scale.config(cli.seed));

    let techniques: Vec<Technique> = [3u8, 5u8]
        .iter()
        .map(|&prepends| Technique::ProactivePrepending {
            prepends,
            selective: false,
        })
        .collect();
    let (grouped, _) = run_or_exit(run_failover_grid_dispatch(
        &testbed,
        &techniques,
        &mut dispatch,
    ));
    let series: Vec<TechniqueSeries> = techniques
        .iter()
        .zip(&grouped)
        .map(|(t, results)| TechniqueSeries::from_results(t, results))
        .collect();

    let recon: Vec<(String, _)> = series
        .iter()
        .map(|s| (s.technique.clone(), s.reconnection_cdf()))
        .collect();
    let refs: Vec<(String, &bobw_measure::Cdf)> =
        recon.iter().map(|(n, c)| (n.clone(), c)).collect();
    println!(
        "{}",
        cdf_table("Figure 5a — reconnection time (s), prepend 3 vs 5", &refs)
    );
    let fail: Vec<(String, _)> = series
        .iter()
        .map(|s| (s.technique.clone(), s.failover_cdf()))
        .collect();
    let refs: Vec<(String, &bobw_measure::Cdf)> =
        fail.iter().map(|(n, c)| (n.clone(), c)).collect();
    println!(
        "{}",
        cdf_table("Figure 5b — failover time (s), prepend 3 vs 5", &refs)
    );

    // The paper's headline: more prepends → similar reconnection, slower
    // failover.
    let f3 = series[0].failover_cdf().median().unwrap_or(f64::NAN);
    let f5 = series[1].failover_cdf().median().unwrap_or(f64::NAN);
    println!(
        "failover median: prepend3={f3:.1}s prepend5={f5:.1}s (delta {:.1}s)",
        f5 - f3
    );

    write_json(&cli, "fig5", &series);
    dispatch.finish();
}
