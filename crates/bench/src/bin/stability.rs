//! Repeatability check (§5.4.1: "we evaluate each technique twice using
//! different sets of targets selected under the same criterion and observe
//! similar reconnection and failover time") — generalized: run Figure 2's
//! headline comparison across several independent Internets (seeds) and
//! report per-seed medians plus the cross-seed spread, verifying that the
//! paper's ordering is a property of the techniques, not of one topology.
//!
//! Run: `cargo run --release -p bobw-bench --bin stability [--scale quick]`

use bobw_bench::{parse_cli, run_failover_grid_dispatch, run_or_exit, write_json, TechniqueSeries};
use bobw_core::{Technique, Testbed};
use bobw_measure::Cdf;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SeedRow {
    seed: u64,
    technique: String,
    reconnection_p50: f64,
    failover_p50: f64,
    failover_p90: f64,
    targets: usize,
}

fn main() {
    let cli = parse_cli();
    let mut dispatch = cli.dispatch();
    let seeds: Vec<u64> = (0..5).map(|i| cli.seed + i * 1000).collect();
    let techniques = [
        Technique::Anycast,
        Technique::ReactiveAnycast,
        Technique::ProactiveSuperprefix,
    ];

    let mut rows: Vec<SeedRow> = Vec::new();
    for &seed in &seeds {
        let testbed = Testbed::new(cli.scale.config(seed));
        // One shared work queue per seed: all ⟨technique, site⟩ cells.
        // Each seed is a separate batch; distributed workers rebuild their
        // testbed from the config shipped with the batch.
        let (grouped, _) = run_or_exit(run_failover_grid_dispatch(
            &testbed,
            &techniques,
            &mut dispatch,
        ));
        for (t, results) in techniques.iter().zip(&grouped) {
            let s = TechniqueSeries::from_results(t, results);
            rows.push(SeedRow {
                seed,
                technique: s.technique.clone(),
                reconnection_p50: s.reconnection_cdf().median().unwrap_or(f64::NAN),
                failover_p50: s.failover_cdf().median().unwrap_or(f64::NAN),
                failover_p90: s.failover_cdf().quantile(0.9).unwrap_or(f64::NAN),
                targets: s.num_targets,
            });
        }
        eprintln!("seed {seed} done");
    }

    println!("Stability across independent Internets (per-seed medians):\n");
    println!(
        "{:<8} {:<24} {:>10} {:>12} {:>12} {:>8}",
        "seed", "technique", "recon p50", "failover p50", "failover p90", "targets"
    );
    for r in &rows {
        println!(
            "{:<8} {:<24} {:>9.1}s {:>11.1}s {:>11.1}s {:>8}",
            r.seed, r.technique, r.reconnection_p50, r.failover_p50, r.failover_p90, r.targets
        );
    }

    // Cross-seed summary + the ordering invariant.
    println!("\nCross-seed spread of failover medians:");
    let mut orderings_hold = true;
    let mut by_seed: std::collections::BTreeMap<u64, (f64, f64, f64)> = Default::default();
    for r in &rows {
        let e = by_seed
            .entry(r.seed)
            .or_insert((f64::NAN, f64::NAN, f64::NAN));
        match r.technique.as_str() {
            "anycast" => e.0 = r.failover_p50,
            "reactive-anycast" => e.1 = r.failover_p50,
            "proactive-superprefix" => e.2 = r.failover_p50,
            _ => {}
        }
    }
    for t in &techniques {
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| r.technique == t.name())
            .map(|r| r.failover_p50)
            .collect();
        let c = Cdf::new(vals);
        println!(
            "  {:<24} min {:>6.1}s  median {:>6.1}s  max {:>6.1}s",
            t.name(),
            c.min().unwrap_or(f64::NAN),
            c.median().unwrap_or(f64::NAN),
            c.max().unwrap_or(f64::NAN)
        );
    }
    for (seed, (anycast, reactive, superprefix)) in &by_seed {
        // NaN medians must count as a violation, so compare via partial_cmp
        // instead of a negated `>`.
        let bound = 2.0 * reactive.max(*anycast);
        if superprefix.partial_cmp(&bound) != Some(std::cmp::Ordering::Greater) {
            orderings_hold = false;
            eprintln!(
                "seed {seed}: ordering violated (anycast {anycast:.1}, reactive {reactive:.1}, \
                 superprefix {superprefix:.1})"
            );
        }
    }
    println!(
        "\nordering invariant (superprefix > 2x others) holds on {}/{} seeds",
        by_seed
            .values()
            .filter(|(a, r, s)| s > &(2.0 * r.max(*a)))
            .count(),
        by_seed.len()
    );
    assert!(
        orderings_hold,
        "the paper's headline ordering must be seed-independent"
    );

    write_json(&cli, "stability", &rows);
    dispatch.finish();
}
