//! The unicast failover baseline the paper argues about but cannot measure
//! directly (§1, §2, §5.4.1): failover bounded by DNS caching and TTL
//! violations. Reproduced from published parameters: median TTL of popular
//! domains ~10 min [Moura '19], Akamai-style 20 s TTL [Schomp '20], median
//! 890 s use-past-expiry among violators [Allman '20].
//!
//! Run: `cargo run --release -p bobw-bench --bin unicast_dns`

use bobw_bench::{parse_cli, write_json};
use bobw_core::{run_unicast_dns_failover, DnsClientConfig, Testbed};
use bobw_dns::{ClientPopulation, DnsFailoverConfig};
use bobw_event::{RngFactory, SimDuration};
use bobw_measure::{cdf_table, Cdf};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct DnsBaselineRow {
    label: String,
    ttl_s: u64,
    violator_fraction: f64,
    samples: Vec<f64>,
}

fn main() {
    let cli = parse_cli();
    let rng = RngFactory::new(cli.seed);
    let n = 20_000;

    let scenarios = [
        ("ttl-600s (popular-domain median)", 600u64, 0.25),
        ("ttl-20s (Akamai-style)", 20, 0.25),
        ("ttl-600s compliant-only", 600, 0.0),
        ("ttl-20s compliant-only", 20, 0.0),
    ];

    let mut rows = Vec::new();
    let mut cdfs = Vec::new();
    for (i, (label, ttl, violators)) in scenarios.iter().enumerate() {
        let cfg = DnsFailoverConfig {
            ttl: SimDuration::from_secs(*ttl),
            violator_fraction: *violators,
            ..Default::default()
        };
        let pop = ClientPopulation::sample(&cfg, n, &rng.derive("dns", i as u64));
        let samples = pop.sorted_secs();
        cdfs.push((label.to_string(), Cdf::new(samples.clone())));
        rows.push(DnsBaselineRow {
            label: label.to_string(),
            ttl_s: *ttl,
            violator_fraction: *violators,
            samples,
        });
    }

    let refs: Vec<(String, &Cdf)> = cdfs.iter().map(|(l, c)| (l.clone(), c)).collect();
    println!(
        "{}",
        cdf_table(
            "Unicast failover baseline — time (s) until a client first uses a live address",
            &refs
        )
    );
    println!(
        "Compare against anycast/reactive-anycast failover medians of ~10s (Figure 2): even a \
         20s TTL leaves a violator tail of hundreds of seconds, which is the paper's case for \
         BGP-layer failover."
    );

    // --- In-simulation cross-check: run the pure-unicast CDN through the
    // full composite (BGP + data plane + per-client resolver caches) and
    // measure the same §5.4.1 metrics as Figure 2. ---
    let testbed = Testbed::new(cli.scale.config(cli.seed));
    let mut insim_recon = Vec::new();
    let mut insim_fail = Vec::new();
    for site in ["bos", "slc", "msn"] {
        let r = run_unicast_dns_failover(&testbed, testbed.site(site), &DnsClientConfig::default());
        insim_recon.extend(r.reconnection_secs());
        insim_fail.extend(r.failover_secs());
    }
    let rc = Cdf::new(insim_recon);
    let fc = Cdf::new(insim_fail);
    println!(
        "\n{}",
        cdf_table(
            "In-simulation unicast failover (composite BGP+DNS+data plane, ttl 600s)",
            &[
                ("unicast-dns recon".to_string(), &rc),
                ("unicast-dns failover".to_string(), &fc),
            ]
        )
    );

    write_json(&cli, "unicast_dns", &rows);
}
