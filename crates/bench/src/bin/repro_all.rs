//! Runs the complete paper reproduction — every table and figure — and
//! writes a markdown summary (`results/SUMMARY.md`) plus per-experiment
//! JSON files. This is the binary behind EXPERIMENTS.md.
//!
//! Run: `cargo run --release -p bobw-bench --bin repro_all [--scale quick]`

use std::fmt::Write as _;

use bobw_bench::appendix::{
    announcement_propagation_instrumented, withdrawal_convergence_instrumented,
};
use bobw_bench::{
    compute_appc1, compute_table1_dispatch, parse_cli, primed_testbed, run_cells,
    run_failover_grid_dispatch, run_or_exit, write_json, CellRecord, PerfLog, Scale,
    TechniqueSeries,
};
use bobw_core::{
    derive_tradeoffs, run_unicast_dns_failover, CellPerf, DnsClientConfig, MeasuredTechnique,
    Technique,
};
use bobw_dns::{ClientPopulation, DnsFailoverConfig};
use bobw_event::RngFactory;
use bobw_measure::{cdf_row, markdown_table, percent, Cdf};
use bobw_topology::OriginProfile;

/// Appends one appendix study's per-instance counters to the perf log.
fn push_study_cells(
    perf: &mut PerfLog,
    study: &str,
    population: &str,
    seed: u64,
    ps: Vec<CellPerf>,
) {
    for p in ps {
        perf.cells.push(CellRecord {
            technique: study.to_string(),
            site: population.to_string(),
            seed,
            events_processed: p.events_processed,
            peak_queue_depth: p.peak_queue_depth,
            queue_capacity: p.queue_capacity,
            wall_micros: p.wall_micros,
        });
    }
}

fn main() {
    let cli = parse_cli();
    let mut dispatch = cli.dispatch();
    let cfg = cli.scale.config(cli.seed);
    let testbed = primed_testbed(&cli);
    // Perf counters from every stage; summarized at the end of
    // SUMMARY.md and dumped to BENCH_repro_all.json (NOT under results/,
    // whose JSON must be byte-identical across --jobs and hosts).
    let mut perf = PerfLog::new(cli.jobs);
    perf.scale = cli.scale.name().to_string();
    let mut md = String::new();
    let _ = writeln!(
        md,
        "# Reproduction summary (scale {:?}, seed {}, topology {} nodes / {} links)\n",
        cli.scale,
        cli.seed,
        testbed.topo.len(),
        testbed.topo.link_count()
    );

    // ---------------- Figure 2 (+ combined) ----------------
    eprintln!("[1/8] figure 2 ({} jobs) ...", cli.jobs);
    let mut techniques = Technique::figure2_set();
    techniques.push(Technique::Combined);
    let (grouped, p) = run_or_exit(run_failover_grid_dispatch(
        &testbed,
        &techniques,
        &mut dispatch,
    ));
    perf.merge(p);
    let mut fig2 = Vec::new();
    for (t, results) in techniques.iter().zip(&grouped) {
        fig2.push(TechniqueSeries::from_results(t, results));
    }
    let _ = writeln!(md, "## Figure 2 — reconnection / failover CDFs\n");
    let _ = writeln!(md, "```");
    for s in &fig2 {
        let _ = writeln!(
            md,
            "{}",
            cdf_row(&format!("{} recon", s.technique), &s.reconnection_cdf())
        );
        let _ = writeln!(
            md,
            "{}",
            cdf_row(&format!("{} failover", s.technique), &s.failover_cdf())
        );
    }
    let _ = writeln!(md, "```\n");
    write_json(&cli, "fig2", &fig2);

    let median_of = |name: &str, failover: bool| -> f64 {
        fig2.iter()
            .find(|s| s.technique == name)
            .map(|s| {
                if failover {
                    s.failover_cdf().median().unwrap_or(f64::NAN)
                } else {
                    s.reconnection_cdf().median().unwrap_or(f64::NAN)
                }
            })
            .unwrap_or(f64::NAN)
    };

    // ---------------- Figure 5 ----------------
    eprintln!("[2/8] figure 5 ...");
    let fig5_techniques: Vec<Technique> = [3u8, 5u8]
        .iter()
        .map(|&prepends| Technique::ProactivePrepending {
            prepends,
            selective: false,
        })
        .collect();
    let (grouped, p) = run_or_exit(run_failover_grid_dispatch(
        &testbed,
        &fig5_techniques,
        &mut dispatch,
    ));
    perf.merge(p);
    let fig5: Vec<TechniqueSeries> = fig5_techniques
        .iter()
        .zip(&grouped)
        .map(|(t, results)| TechniqueSeries::from_results(t, results))
        .collect();
    let _ = writeln!(md, "## Figure 5 — prepend 3 vs 5\n```");
    for s in &fig5 {
        let _ = writeln!(
            md,
            "{}",
            cdf_row(&format!("{} recon", s.technique), &s.reconnection_cdf())
        );
        let _ = writeln!(
            md,
            "{}",
            cdf_row(&format!("{} failover", s.technique), &s.failover_cdf())
        );
    }
    let _ = writeln!(md, "```\n");
    write_json(&cli, "fig5", &fig5);

    // ---------------- Table 1 ----------------
    eprintln!("[3/8] table 1 ...");
    let (t1, p) = run_or_exit(compute_table1_dispatch(&testbed, &[3, 5], &mut dispatch));
    perf.merge(p);
    let mut rows = Vec::new();
    let mk_row = |label: &str, f: &dyn Fn(&str) -> String| -> Vec<String> {
        let mut row = vec![label.to_string()];
        row.extend(t1.site_order.iter().map(|n| f(n)));
        row
    };
    rows.push(mk_row("not routed by anycast", &|n| percent(t1.rows[n].0)));
    rows.push(mk_row("prepend 3", &|n| percent(t1.rows[n].1[0].1)));
    rows.push(mk_row("prepend 5", &|n| percent(t1.rows[n].1[1].1)));
    let mut header: Vec<String> = vec!["".into()];
    header.extend(t1.site_order.clone());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let _ = writeln!(md, "## Table 1 — traffic control\n");
    let _ = writeln!(md, "{}", markdown_table(&header_refs, &rows));
    write_json(&cli, "table1", &t1);

    // ---------------- Table 2 ----------------
    eprintln!("[4/8] table 2 ...");
    let anycast_median = median_of("anycast", true);
    let prepending_control =
        t1.rows.values().map(|(_, s)| s[0].1).sum::<f64>() / t1.rows.len().max(1) as f64;
    let measured = vec![
        MeasuredTechnique {
            technique: Technique::ProactivePrepending {
                prepends: 3,
                selective: false,
            },
            control_fraction: prepending_control,
            failover_median_s: Some(median_of("proactive-prepending-3", true)),
        },
        MeasuredTechnique {
            technique: Technique::ReactiveAnycast,
            control_fraction: 1.0,
            failover_median_s: Some(median_of("reactive-anycast", true)),
        },
        MeasuredTechnique {
            technique: Technique::ProactiveSuperprefix,
            control_fraction: 1.0,
            failover_median_s: Some(median_of("proactive-superprefix", true)),
        },
        MeasuredTechnique {
            technique: Technique::Anycast,
            control_fraction: 0.0,
            failover_median_s: Some(anycast_median),
        },
        MeasuredTechnique {
            technique: Technique::Unicast,
            control_fraction: 1.0,
            failover_median_s: None,
        },
    ];
    let t2 = derive_tradeoffs(&measured, anycast_median);
    let t2_rows: Vec<Vec<String>> = t2
        .iter()
        .map(|r| {
            vec![
                r.technique.clone(),
                r.control.to_string(),
                r.availability.to_string(),
                r.risk.to_string(),
            ]
        })
        .collect();
    let _ = writeln!(md, "## Table 2 — tradeoffs (derived)\n");
    let _ = writeln!(
        md,
        "{}",
        markdown_table(&["Technique", "Control", "Availability", "Risk"], &t2_rows)
    );
    write_json(&cli, "table2", &t2);

    // ---------------- Figures 3 & 4 ----------------
    let instances = match cli.scale {
        Scale::Quick => 6,
        Scale::Eval => 16,
        Scale::Large => 24,
    };
    eprintln!("[5/8] figure 3 ...");
    let stage = std::time::Instant::now();
    let (f3h, ph) = withdrawal_convergence_instrumented(
        &cfg,
        &cfg.timing,
        OriginProfile::Hypergiant,
        instances,
        cli.jobs,
    );
    let (f3p, pp) = withdrawal_convergence_instrumented(
        &cfg,
        &cfg.timing,
        OriginProfile::PeeringTestbed,
        instances,
        cli.jobs,
    );
    perf.elapsed_micros += stage.elapsed().as_micros() as u64;
    push_study_cells(&mut perf, "fig3-withdrawal", &f3h.population, cli.seed, ph);
    push_study_cells(&mut perf, "fig3-withdrawal", &f3p.population, cli.seed, pp);
    let _ = writeln!(md, "## Figure 3 — withdrawal convergence\n```");
    let _ = writeln!(
        md,
        "{}",
        cdf_row("hypergiant", &Cdf::new(f3h.samples.clone()))
    );
    let _ = writeln!(md, "{}", cdf_row("peering", &Cdf::new(f3p.samples.clone())));
    let _ = writeln!(md, "```\n");
    write_json(&cli, "fig3", &vec![f3h, f3p]);

    eprintln!("[6/8] figure 4 ...");
    let stage = std::time::Instant::now();
    let (f4m, pm) = announcement_propagation_instrumented(
        &cfg,
        &cfg.timing,
        OriginProfile::Hypergiant,
        3,
        instances,
        cli.jobs,
    );
    let (f4p, pp) = announcement_propagation_instrumented(
        &cfg,
        &cfg.timing,
        OriginProfile::PeeringTestbed,
        1,
        instances,
        cli.jobs,
    );
    perf.elapsed_micros += stage.elapsed().as_micros() as u64;
    push_study_cells(&mut perf, "fig4-propagation", &f4m.population, cli.seed, pm);
    push_study_cells(&mut perf, "fig4-propagation", &f4p.population, cli.seed, pp);
    let _ = writeln!(md, "## Figure 4 — announcement propagation\n```");
    let _ = writeln!(
        md,
        "{}",
        cdf_row("manycast2-like", &Cdf::new(f4m.samples.clone()))
    );
    let _ = writeln!(md, "{}", cdf_row("peering", &Cdf::new(f4p.samples.clone())));
    let _ = writeln!(md, "```\n");
    write_json(&cli, "fig4", &vec![f4m, f4p]);

    // ---------------- Appendix C.1 ----------------
    eprintln!("[7/8] appendix C.1 ...");
    let _ = writeln!(md, "## Appendix C.1 — divergence classification\n");
    // Sites fan over --jobs runner threads; run_cells returns them in
    // site order, so the table (and JSON) is jobs-independent.
    let stage = std::time::Instant::now();
    let c1_sites = ["sea1", "sea2", "ams", "msn"];
    let c1 = run_cells(&c1_sites, cli.jobs, |_, site| {
        compute_appc1(&testbed, site, 5)
    });
    perf.elapsed_micros += stage.elapsed().as_micros() as u64;
    let c1_rows: Vec<Vec<String>> = c1
        .iter()
        .map(|r| {
            vec![
                r.site_name.clone(),
                r.measured_pairs.to_string(),
                percent(r.frac_to_intended()),
                percent(r.frac_business_pref()),
                percent(r.frac_via_rne()),
            ]
        })
        .collect();
    let _ = writeln!(
        md,
        "{}",
        markdown_table(
            &["site", "pairs", "to intended", "business pref", "via R&E"],
            &c1_rows
        )
    );
    write_json(&cli, "appc1", &c1);

    // ---------------- DNS baseline ----------------
    eprintln!("[8/8] unicast DNS baseline ...");
    let rng = RngFactory::new(cli.seed);
    let pop = ClientPopulation::sample(&DnsFailoverConfig::default(), 20_000, &rng);
    let dns_cdf = Cdf::new(pop.sorted_secs());
    // In-simulation cross-check over a few sites (composite BGP+DNS+data
    // plane with per-client resolver caches).
    let mut insim = Vec::new();
    for site in ["bos", "slc", "msn"] {
        let r = run_unicast_dns_failover(&testbed, testbed.site(site), &DnsClientConfig::default());
        insim.extend(r.reconnection_secs());
    }
    let insim_cdf = Cdf::new(insim);
    let _ = writeln!(md, "## Unicast DNS-bound failover baseline\n```");
    let _ = writeln!(md, "{}", cdf_row("unicast analytic (ttl 600s)", &dns_cdf));
    let _ = writeln!(md, "{}", cdf_row("unicast in-sim (ttl 600s)", &insim_cdf));
    let _ = writeln!(md, "```\n");

    // ---------------- Runner perf trajectory ----------------
    let _ = writeln!(md, "{}", perf.markdown_section());
    match serde_json::to_string_pretty(&perf) {
        Ok(s) => {
            if let Err(e) = std::fs::write("BENCH_repro_all.json", s) {
                eprintln!("warning: cannot write BENCH_repro_all.json: {e}");
            } else {
                eprintln!("wrote BENCH_repro_all.json");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize perf log: {e}"),
    }

    // ---------------- Write summary ----------------
    let path = cli.out_dir.join("SUMMARY.md");
    let _ = std::fs::create_dir_all(&cli.out_dir);
    std::fs::write(&path, &md).expect("write summary");
    println!("{md}");
    eprintln!("summary written to {}", path.display());
    dispatch.finish();
}
