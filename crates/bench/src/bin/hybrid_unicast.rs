//! §3's first hybrid non-solution: "identify the subset of clients with
//! poor anycast performance and use unicast just for these clients"
//! [Calder et al. '15]. The paper rejects it because that subset inherits
//! unicast's DNS-bound failover.
//!
//! This binary quantifies the rejection: it finds the poor-anycast clients
//! on the simulated Internet (anycast RTT inflation over the best site),
//! then shows the failover exposure of exactly that subset under the
//! DNS model.
//!
//! Run: `cargo run --release -p bobw-bench --bin hybrid_unicast [--scale quick]`

use bobw_bench::{parse_cli, write_json};
use bobw_bgp::{OriginConfig, Standalone};
use bobw_core::Testbed;
use bobw_dataplane::{rtt_to_site, walk, Delivery, ForwardEnv};
use bobw_dns::{ClientPopulation, DnsFailoverConfig};
use bobw_event::{RngFactory, SimDuration};
use bobw_measure::{percent, Cdf};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct HybridReport {
    clients: usize,
    measurable: usize,
    poor_anycast: usize,
    poor_fraction: f64,
    inflation_ms_p50: f64,
    inflation_ms_p90: f64,
    unicast_subset_failover_p50_s: f64,
    unicast_subset_failover_p90_s: f64,
}

fn main() {
    let cli = parse_cli();
    let cfg = cli.scale.config(cli.seed);
    let testbed = Testbed::new(cfg.clone());
    let topo = &testbed.topo;
    let cdn = &testbed.cdn;
    let plan = &cfg.plan;

    // Converge an anycast announcement plus one unicast measurement prefix
    // per comparison site (we reuse rtt_probe per-site sequentially).
    let rng = RngFactory::new(cli.seed);
    let mut sim = Standalone::new(topo, cfg.timing.clone(), &rng);
    for s in cdn.sites() {
        sim.announce(cdn.node(s), plan.anycast_probe, OriginConfig::plain());
    }
    sim.run_to_idle(cfg.max_events);

    // Anycast RTT per client, and the geographically best site's RTT lower
    // bound (direct fiber distance — the CDN could serve from there with a
    // unicast record).
    let env = ForwardEnv {
        topo,
        bgp: sim.sim(),
        down: &[],
    };
    let mut inflation_ms = Vec::new();
    let mut measurable = 0usize;
    let mut poor = 0usize;
    let threshold_ms = 25.0;
    let clients: Vec<_> = topo.client_nodes().collect();
    for &client in &clients {
        let anycast_rtt = match walk(&env, client, plan.anycast_addr()) {
            Delivery::Delivered { .. } => rtt_to_site(&env, client, plan.anycast_addr()),
            _ => None,
        };
        let Some(anycast_rtt) = anycast_rtt else {
            continue;
        };
        // Best possible: nearest site by great-circle fiber distance.
        let best_ms = cdn
            .site_nodes()
            .iter()
            .map(|&s| {
                let km = topo.node(client).coords.distance_km(&topo.node(s).coords);
                2.0 * bobw_topology::propagation_delay(km).as_secs_f64() * 1000.0
            })
            .fold(f64::INFINITY, f64::min);
        measurable += 1;
        let infl = anycast_rtt.as_secs_f64() * 1000.0 - best_ms;
        inflation_ms.push(infl.max(0.0));
        if infl > threshold_ms {
            poor += 1;
        }
    }
    let infl_cdf = Cdf::new(inflation_ms);

    // The poor subset gets unicast records: its failover is DNS-bound.
    let dns = ClientPopulation::sample(
        &DnsFailoverConfig::default(),
        poor.max(1),
        &rng.derive("hybrid-dns", 0),
    );
    let dns_cdf = Cdf::new(dns.sorted_secs());

    let report = HybridReport {
        clients: clients.len(),
        measurable,
        poor_anycast: poor,
        poor_fraction: poor as f64 / measurable.max(1) as f64,
        inflation_ms_p50: infl_cdf.median().unwrap_or(f64::NAN),
        inflation_ms_p90: infl_cdf.quantile(0.9).unwrap_or(f64::NAN),
        unicast_subset_failover_p50_s: dns_cdf.median().unwrap_or(f64::NAN),
        unicast_subset_failover_p90_s: dns_cdf.quantile(0.9).unwrap_or(f64::NAN),
    };

    println!("§3 hybrid non-solution #1 — unicast for poor-anycast clients");
    println!(
        "clients measurable: {} / {}; anycast RTT inflation p50 {:.1} ms, p90 {:.1} ms",
        report.measurable, report.clients, report.inflation_ms_p50, report.inflation_ms_p90
    );
    println!(
        "poor-anycast subset (inflation > {threshold_ms:.0} ms): {} clients = {}",
        report.poor_anycast,
        percent(report.poor_fraction)
    );
    println!(
        "that subset's failover under unicast+DNS: p50 {:.0}s, p90 {:.0}s — vs ~{}s for \
         reactive-anycast (Figure 2). Fixing anycast's performance problem this way \
         re-creates unicast's availability problem for exactly the moved clients, which \
         is why the paper rejects it (§3).",
        report.unicast_subset_failover_p50_s,
        report.unicast_subset_failover_p90_s,
        SimDuration::from_secs(6).as_secs()
    );

    write_json(&cli, "hybrid_unicast", &report);
}
