//! Criterion bench for the Figure 2 machinery: one full failover
//! experiment (converge → select → fail → probe → metrics) per technique,
//! at a reduced scale so `cargo bench` completes quickly. The full-scale
//! reproduction lives in the `fig2` binary.
//!
//! Criterion owns `argv`, so the runner knobs arrive through the
//! environment instead: `BOBW_JOBS=N` runs each iteration's cell batch on
//! N local threads, `BOBW_DISPATCH=tcp://…|unix://…` serves it to remote
//! `bobw-worker` processes. Default is one local thread so timings stay
//! comparable run to run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bobw_bench::env_dispatch;
use bobw_core::{ExperimentConfig, Technique, Testbed};
use bobw_dist::{CellOutput, CellSpec};
use bobw_event::SimDuration;

fn bench_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(7);
    cfg.gen = bobw_topology::GenConfig::tiny();
    cfg.targets_per_site = 30;
    cfg.probe.duration = SimDuration::from_secs(90);
    cfg
}

fn fig2(c: &mut Criterion) {
    let testbed = Testbed::new(bench_cfg());
    let mut dispatch = env_dispatch();
    let mut group = c.benchmark_group("fig2_failover");
    let mut techniques = Technique::figure2_set();
    techniques.push(Technique::Combined);
    for t in techniques {
        let cells = [CellSpec::Failover {
            technique: t.name(),
            site: "bos".to_string(),
        }];
        group.bench_with_input(BenchmarkId::from_parameter(t.name()), &t, |b, _| {
            b.iter(|| {
                let out = dispatch.run(&testbed, &cells).expect("cell runs");
                let CellOutput::Failover(r, _) = &out[0] else {
                    panic!("failover cell produced control output");
                };
                (r.num_controllable, r.outcomes.len())
            })
        });
    }
    group.finish();
    dispatch.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig2
}
criterion_main!(benches);
