//! Criterion bench for the Figure 2 machinery: one full failover
//! experiment (converge → select → fail → probe → metrics) per technique,
//! at a reduced scale so `cargo bench` completes quickly. The full-scale
//! reproduction lives in the `fig2` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bobw_core::{run_failover, ExperimentConfig, Technique, Testbed};
use bobw_event::SimDuration;

fn bench_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(7);
    cfg.gen = bobw_topology::GenConfig::tiny();
    cfg.targets_per_site = 30;
    cfg.probe.duration = SimDuration::from_secs(90);
    cfg
}

fn fig2(c: &mut Criterion) {
    let testbed = Testbed::new(bench_cfg());
    let mut group = c.benchmark_group("fig2_failover");
    let mut techniques = Technique::figure2_set();
    techniques.push(Technique::Combined);
    for t in techniques {
        group.bench_with_input(BenchmarkId::from_parameter(t.name()), &t, |b, t| {
            b.iter(|| {
                let r = run_failover(&testbed, t, testbed.site("bos"));
                (r.num_controllable, r.outcomes.len())
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig2
}
criterion_main!(benches);
