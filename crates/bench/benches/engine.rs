//! Engine microbenchmarks: raw simulator throughput underlying every
//! experiment — prefix-trie operations, full-topology BGP convergence, and
//! withdrawal path exploration.
//!
//! Unlike the experiment-level benches, these measure single-threaded
//! primitives with no cell grid, so the `BOBW_JOBS` / `BOBW_DISPATCH`
//! runner knobs deliberately do not apply here.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::time::Duration;

use bobw_bgp::{BgpTimingConfig, OriginConfig, Standalone};
use bobw_event::RngFactory;
use bobw_net::{Prefix, PrefixTrie};
use bobw_topology::{generate, GenConfig};

fn trie_ops(c: &mut Criterion) {
    let prefixes: Vec<Prefix> = (0..512u32)
        .map(|i| Prefix::new((10 << 24) | (i << 14), 18))
        .collect();
    c.bench_function("trie_insert_512", |b| {
        b.iter_batched(
            PrefixTrie::<u32>::new,
            |mut t| {
                for (i, p) in prefixes.iter().enumerate() {
                    t.insert(*p, i as u32);
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    let mut full = PrefixTrie::new();
    for (i, p) in prefixes.iter().enumerate() {
        full.insert(*p, i as u32);
    }
    c.bench_function("trie_lpm_lookup", |b| {
        let mut addr = 0u32;
        b.iter(|| {
            addr = addr.wrapping_add(0x9e37_79b9);
            full.lookup((10 << 24) | (addr & 0x00ff_ffff))
        })
    });
}

fn bgp_convergence(c: &mut Criterion) {
    let rng = RngFactory::new(7);
    let (topo, cdn) = generate(&GenConfig::small(), &rng);
    let prefix: Prefix = "184.164.244.0/24".parse().unwrap();
    c.bench_function("bgp_anycast_convergence_small", |b| {
        b.iter(|| {
            let mut sim = Standalone::new(&topo, BgpTimingConfig::default(), &rng);
            for &site in cdn.site_nodes() {
                sim.announce(site, prefix, OriginConfig::plain());
            }
            sim.run_to_idle(10_000_000);
            sim.sim().stats().messages
        })
    });
    c.bench_function("bgp_withdrawal_exploration_small", |b| {
        b.iter_batched(
            || {
                let mut sim = Standalone::new(&topo, BgpTimingConfig::default(), &rng);
                sim.announce(cdn.site_nodes()[0], prefix, OriginConfig::plain());
                sim.run_to_idle(10_000_000);
                sim
            },
            |mut sim| {
                sim.withdraw(cdn.site_nodes()[0], prefix);
                sim.run_to_idle(10_000_000);
                sim.sim().stats().messages
            },
            BatchSize::SmallInput,
        )
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = trie_ops, bgp_convergence
}
criterion_main!(benches);
