//! Criterion bench for the Figure 5 (Appendix C.2) machinery: the
//! proactive-prepending failover experiment at prepend 3 vs 5. Full-scale
//! numbers come from the `fig5` binary.
//!
//! Honors `BOBW_JOBS` / `BOBW_DISPATCH` (criterion owns `argv` — see
//! `fig2_failover.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bobw_bench::env_dispatch;
use bobw_core::{ExperimentConfig, Technique, Testbed};
use bobw_dist::{CellOutput, CellSpec};
use bobw_event::SimDuration;

fn fig5(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::quick(7);
    cfg.gen = bobw_topology::GenConfig::tiny();
    cfg.targets_per_site = 30;
    cfg.probe.duration = SimDuration::from_secs(90);
    let testbed = Testbed::new(cfg);
    let mut dispatch = env_dispatch();
    let mut group = c.benchmark_group("fig5_prepend");
    for prepends in [3u8, 5u8] {
        let t = Technique::ProactivePrepending {
            prepends,
            selective: false,
        };
        let cells = [CellSpec::Failover {
            technique: t.name(),
            site: "slc".to_string(),
        }];
        group.bench_with_input(BenchmarkId::from_parameter(prepends), &t, |b, _| {
            b.iter(|| {
                let out = dispatch.run(&testbed, &cells).expect("cell runs");
                let CellOutput::Failover(r, _) = &out[0] else {
                    panic!("failover cell produced control output");
                };
                r.outcomes.len()
            })
        });
    }
    group.finish();
    dispatch.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig5
}
criterion_main!(benches);
