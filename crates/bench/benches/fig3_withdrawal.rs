//! Criterion bench for the Figure 3 (Appendix A) machinery: one withdrawal
//! convergence study instance per origin profile. Full-scale numbers come
//! from the `fig3` binary.
//!
//! Honors `BOBW_JOBS` (criterion owns `argv` — see `fig2_failover.rs`);
//! the appendix studies run in-process, so `BOBW_DISPATCH` does not apply.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bobw_bench::appendix::withdrawal_convergence_instrumented;
use bobw_bench::env_jobs;
use bobw_core::ExperimentConfig;
use bobw_topology::OriginProfile;

fn fig3(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::quick(7);
    cfg.gen = bobw_topology::GenConfig::tiny();
    let jobs = env_jobs();
    let mut group = c.benchmark_group("fig3_withdrawal");
    for profile in [OriginProfile::Hypergiant, OriginProfile::PeeringTestbed] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{profile:?}")),
            &profile,
            |b, p| {
                b.iter(|| {
                    let (out, _) =
                        withdrawal_convergence_instrumented(&cfg, &cfg.timing, *p, 1, jobs);
                    out.samples.len()
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig3
}
criterion_main!(benches);
