//! Criterion bench for the Figure 4 (Appendix B) machinery: one anycast
//! announcement propagation study instance per population. Full-scale
//! numbers come from the `fig4` binary.
//!
//! Honors `BOBW_JOBS` (criterion owns `argv` — see `fig2_failover.rs`);
//! the appendix studies run in-process, so `BOBW_DISPATCH` does not apply.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bobw_bench::appendix::announcement_propagation_instrumented;
use bobw_bench::env_jobs;
use bobw_core::ExperimentConfig;
use bobw_topology::OriginProfile;

fn fig4(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::quick(7);
    cfg.gen = bobw_topology::GenConfig::tiny();
    let jobs = env_jobs();
    let mut group = c.benchmark_group("fig4_propagation");
    for (label, profile, n) in [
        ("manycast2-like", OriginProfile::Hypergiant, 3usize),
        ("peering", OriginProfile::PeeringTestbed, 1),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(profile, n),
            |b, (p, n)| {
                b.iter(|| {
                    let (out, _) =
                        announcement_propagation_instrumented(&cfg, &cfg.timing, *p, *n, 1, jobs);
                    out.samples.len()
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig4
}
criterion_main!(benches);
