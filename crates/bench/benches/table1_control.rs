//! Criterion bench for the Table 1 machinery: anycast catchment + steered
//! fraction under prepending for one site. Full-scale numbers come from the
//! `table1` binary.
//!
//! Honors `BOBW_JOBS` / `BOBW_DISPATCH` (criterion owns `argv` — see
//! `fig2_failover.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bobw_bench::env_dispatch;
use bobw_core::{ExperimentConfig, Testbed};
use bobw_dist::{CellOutput, CellSpec};

fn table1(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::quick(7);
    cfg.gen = bobw_topology::GenConfig::tiny();
    let testbed = Testbed::new(cfg);
    let mut dispatch = env_dispatch();
    let mut group = c.benchmark_group("table1_control");
    for site in ["ams", "sea1", "sea2"] {
        let cells = [CellSpec::Control {
            site: site.to_string(),
            prepends: vec![3, 5],
        }];
        group.bench_with_input(BenchmarkId::from_parameter(site), &site, |b, _| {
            b.iter(|| {
                let out = dispatch.run(&testbed, &cells).expect("cell runs");
                let CellOutput::Control(r, _) = &out[0] else {
                    panic!("control cell produced failover output");
                };
                (r.site_name.len(), r.steered.len())
            })
        });
    }
    group.finish();
    dispatch.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = table1
}
criterion_main!(benches);
