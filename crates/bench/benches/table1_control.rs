//! Criterion bench for the Table 1 machinery: anycast catchment + steered
//! fraction under prepending for one site. Full-scale numbers come from the
//! `table1` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use bobw_core::{measure_control, ExperimentConfig, Testbed};

fn table1(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::quick(7);
    cfg.gen = bobw_topology::GenConfig::tiny();
    let testbed = Testbed::new(cfg);
    let mut group = c.benchmark_group("table1_control");
    for site in ["ams", "sea1", "sea2"] {
        group.bench_with_input(BenchmarkId::from_parameter(site), &site, |b, site| {
            b.iter(|| {
                let r = measure_control(&testbed, testbed.site(site), &[3, 5]);
                (r.num_near, r.steered.len())
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = table1
}
criterion_main!(benches);
