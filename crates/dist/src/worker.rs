//! The worker side: connect, handshake, pull cells, push results.
//!
//! A worker process runs [`run_worker`], which opens **one** connection
//! to the coordinator and multiplexes all `threads` executor threads
//! over it (pre-v4 workers opened one connection per thread; one
//! multiplexed connection cuts coordinator fan-in and lets all threads
//! share a single warm testbed). The connection:
//!
//! 1. receives the server's [`Challenge`], answers with a
//!    [`Greeting::Worker`] carrying this build's fingerprint, its
//!    capacity (`threads`), and — when a shared secret is configured —
//!    an HMAC credential over the challenge nonce, then waits for
//!    [`HelloReply::Welcome`] (a `Rejected` reply ends the worker with an
//!    error — a version-skewed or unauthenticated binary must not
//!    compute cells);
//! 2. answers every [`ToWorker::Batch`] by looking up a [`Testbed`] in
//!    the **process-wide cache** keyed by the config fingerprint —
//!    surviving across batches, jobs, and reconnects — building one on a
//!    miss, and replying `Ready { cache_hit }` (`Ready` *always* means
//!    "batch acknowledged, give me work");
//! 3. fans every [`ToWorker::Assign`] out to an executor thread (the
//!    coordinator assigns up to `capacity` cells concurrently), each
//!    streaming back `Done` with a background heartbeat renewing the
//!    cell's lease while it computes;
//! 4. exits on `Shutdown` or a closed socket.
//!
//! Determinism: the cell computation is exactly the same
//! `run_failover_instrumented` / `measure_control_instrumented` call a
//! local run makes, against a `Testbed` built from the coordinator's own
//! config — so a cell's bytes are identical no matter which process (or
//! which of its threads) ran it.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use bobw_core::{measure_control_instrumented, try_run_failover_instrumented, Technique, Testbed};

use crate::auth::AuthSecret;
use crate::endpoint::{Conn, Endpoint};
use crate::proto::{
    build_fingerprint, config_fingerprint, CellOutput, CellSpec, Challenge, FromWorker, Greeting,
    Hello, HelloReply, ToWorker, PROTOCOL_VERSION,
};
use crate::wire::{recv, send};

/// How often a busy worker renews its lease on the cell it is computing.
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_secs(2);

/// Distinct testbeds kept warm per process. Grids cycle between a small
/// number of configs (repro_all reuses one; ablations mutate a handful),
/// and a testbed is the dominant memory cost — bound the cache and evict
/// the least-recently-used config beyond it.
pub const TESTBED_CACHE_CAPACITY: usize = 4;

/// Worker configuration.
pub struct WorkerConfig {
    /// Coordinator endpoint to connect to.
    pub connect: Endpoint,
    /// Executor threads (concurrent cells) multiplexed over the one
    /// connection; advertised to the coordinator as capacity.
    pub threads: usize,
    /// Name reported in the handshake (logs only).
    pub name: String,
    /// How long to keep retrying the initial connect (workers usually
    /// race the coordinator's bind).
    pub connect_timeout: Duration,
    /// Shared handshake secret ([`crate::auth::SECRET_ENV`] by default);
    /// required when the coordinator's challenge demands authentication.
    pub secret: Option<AuthSecret>,
}

impl WorkerConfig {
    pub fn new(connect: Endpoint) -> WorkerConfig {
        WorkerConfig {
            connect,
            threads: 1,
            name: format!("worker-{}", std::process::id()),
            connect_timeout: Duration::from_secs(10),
            secret: AuthSecret::from_env(),
        }
    }
}

/// Runs a worker until the coordinator shuts it down or disconnects.
/// Returns the number of cells this process completed.
pub fn run_worker(cfg: &WorkerConfig) -> Result<u64, String> {
    let conn = cfg
        .connect
        .connect_with_retry(cfg.connect_timeout)
        .map_err(|e| format!("connect {}: {e}", cfg.connect))?;
    serve_connection(conn, &cfg.name, cfg.threads.max(1), cfg.secret.as_ref())
}

/// One assigned cell traveling from the reader loop to an executor.
struct Job {
    batch_id: u64,
    cell_index: u64,
    cell: CellSpec,
    testbed: Arc<Testbed>,
}

/// The connection's work loop. Public for in-process tests, which drive a
/// worker against a coordinator over a loopback socket without spawning a
/// subprocess.
pub fn serve_connection(
    conn: Conn,
    name: &str,
    threads: usize,
    secret: Option<&AuthSecret>,
) -> Result<u64, String> {
    conn.set_nodelay();
    let writer = Arc::new(Mutex::new(
        conn.try_clone().map_err(|e| format!("clone conn: {e}"))?,
    ));
    let mut reader = conn;

    // Handshake: challenge first, then our greeting, then the verdict.
    let challenge: Challenge = recv(&mut reader)
        .map_err(|e| format!("handshake recv: {e}"))?
        .ok_or("coordinator closed during handshake")?;
    let auth = match secret {
        Some(s) => s.worker_tag(
            &challenge.nonce,
            PROTOCOL_VERSION,
            build_fingerprint(),
            name,
        ),
        None if challenge.auth_required => {
            return Err(format!(
                "coordinator requires authentication and worker {name} has no secret \
                 (set {} or pass --secret-file)",
                crate::auth::SECRET_ENV
            ));
        }
        None => Vec::new(),
    };
    send(
        &mut *writer.lock().unwrap(),
        &Greeting::Worker(Hello {
            protocol: PROTOCOL_VERSION,
            fingerprint: build_fingerprint(),
            worker_name: name.to_string(),
            capacity: threads as u32,
            auth,
        }),
    )
    .map_err(|e| format!("handshake send: {e}"))?;
    match recv::<_, HelloReply>(&mut reader).map_err(|e| format!("handshake recv: {e}"))? {
        Some(HelloReply::Welcome) => {}
        Some(HelloReply::Rejected { reason }) => {
            return Err(format!("coordinator rejected worker {name}: {reason}"));
        }
        None => return Err("coordinator closed during handshake".into()),
    }

    let completed = AtomicU64::new(0);
    let executor_error: Mutex<Option<String>> = Mutex::new(None);

    let reader_result: Result<(), String> = std::thread::scope(|scope| {
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        for _ in 0..threads {
            let jobs_rx = Arc::clone(&jobs_rx);
            let writer = Arc::clone(&writer);
            let completed = &completed;
            let executor_error = &executor_error;
            scope.spawn(move || {
                loop {
                    // Take the next job; all executors share one receiver.
                    let job = match jobs_rx.lock().unwrap().recv() {
                        Ok(job) => job,
                        Err(_) => return, // reader closed the channel: done
                    };
                    let _beat = heartbeat_guard(Arc::clone(&writer), job.batch_id, job.cell_index);
                    let reply = match execute_cell(&job.testbed, &job.cell) {
                        Ok(output) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                            FromWorker::Done {
                                batch_id: job.batch_id,
                                cell_index: job.cell_index,
                                output: Box::new(output),
                            }
                        }
                        Err(error) => FromWorker::Failed {
                            batch_id: job.batch_id,
                            cell_index: job.cell_index,
                            error,
                        },
                    };
                    if let Err(e) = send(&mut *writer.lock().unwrap(), &reply) {
                        let mut slot = executor_error.lock().unwrap();
                        if slot.is_none() {
                            *slot = Some(format!("send: {e}"));
                        }
                        return; // connection gone; the reader will notice too
                    }
                }
            });
        }

        // Reader loop: dispatch assignments, manage the testbed cache.
        // `jobs_tx` is dropped on exit, which retires the executors.
        let mut current: Option<(u64, Arc<Testbed>)> = None;
        loop {
            let msg = match recv::<_, ToWorker>(&mut reader) {
                Ok(Some(m)) => m,
                // Clean EOF or a torn connection both mean "no more work".
                Ok(None) => break,
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(format!("recv: {e}")),
            };
            match msg {
                ToWorker::Batch {
                    batch_id,
                    config_print,
                    config,
                } => {
                    let local_print = config_fingerprint(&config);
                    if local_print != config_print {
                        // The config decoded differently than the coordinator
                        // encoded it — a codec bug; refuse loudly rather than
                        // compute wrong cells.
                        return Err(format!(
                            "batch {batch_id}: config fingerprint mismatch \
                             (coordinator {config_print:#x}, local {local_print:#x})"
                        ));
                    }
                    let (testbed, cache_hit) =
                        cached_testbed(local_print, || Testbed::new(*config));
                    current = Some((local_print, testbed));
                    send(
                        &mut *writer.lock().unwrap(),
                        &FromWorker::Ready { cache_hit },
                    )
                    .map_err(|e| format!("send: {e}"))?;
                }
                ToWorker::Assign {
                    batch_id,
                    cell_index,
                    cell,
                } => {
                    let Some((_, testbed)) = current.as_ref() else {
                        return Err(format!("assigned cell {cell_index} before any batch"));
                    };
                    let job = Job {
                        batch_id,
                        cell_index,
                        cell,
                        testbed: Arc::clone(testbed),
                    };
                    if jobs_tx.send(job).is_err() {
                        // All executors died (writer gone); surface why.
                        break;
                    }
                }
                ToWorker::Drain => {
                    // Nothing to do: stay connected for the next batch.
                }
                ToWorker::Shutdown => break,
            }
        }
        Ok(())
    });

    reader_result?;
    if let Some(e) = executor_error.into_inner().unwrap() {
        return Err(e);
    }
    Ok(completed.load(Ordering::Relaxed))
}

/// The process-wide warm testbed cache, keyed by config fingerprint.
/// Long-lived workers attached to a `bobw serve` daemon run many jobs;
/// jobs reusing a config skip the (dominant) topology build + BGP
/// convergence entirely. Holding the lock across a build also means two
/// batches racing on the same config build it once.
fn cached_testbed(print: u64, build: impl FnOnce() -> Testbed) -> (Arc<Testbed>, bool) {
    struct Cache {
        /// fingerprint -> testbed; `lru` tracks recency, oldest first.
        entries: HashMap<u64, Arc<Testbed>>,
        lru: Vec<u64>,
    }
    static CACHE: OnceLock<Mutex<Cache>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| {
        Mutex::new(Cache {
            entries: HashMap::new(),
            lru: Vec::new(),
        })
    });
    let mut cache = cache.lock().unwrap();
    cache.lru.retain(|&p| p != print);
    cache.lru.push(print);
    if let Some(tb) = cache.entries.get(&print) {
        return (Arc::clone(tb), true);
    }
    let tb = Arc::new(build());
    cache.entries.insert(print, Arc::clone(&tb));
    while cache.lru.len() > TESTBED_CACHE_CAPACITY {
        let evict = cache.lru.remove(0);
        cache.entries.remove(&evict);
    }
    (tb, false)
}

/// A live heartbeat for one cell: a background thread sends
/// [`FromWorker::Heartbeat`] every [`HEARTBEAT_INTERVAL`] until dropped.
/// The thread waits on a condvar (not a plain sleep) so dropping the
/// guard after a short cell returns immediately instead of stalling the
/// work loop for the rest of the interval.
struct HeartbeatGuard {
    state: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

fn heartbeat_guard(writer: Arc<Mutex<Conn>>, batch_id: u64, cell_index: u64) -> HeartbeatGuard {
    let state = Arc::new((Mutex::new(false), Condvar::new()));
    let state2 = Arc::clone(&state);
    let handle = std::thread::spawn(move || {
        let (stopped, wake) = &*state2;
        let mut stopped = stopped.lock().unwrap();
        loop {
            let (guard, timeout) = wake.wait_timeout(stopped, HEARTBEAT_INTERVAL).unwrap();
            stopped = guard;
            if *stopped {
                return;
            }
            if timeout.timed_out() {
                let beat = FromWorker::Heartbeat {
                    batch_id,
                    cell_index,
                };
                if send(&mut *writer.lock().unwrap(), &beat).is_err() {
                    return; // connection gone; the main loop will notice too
                }
            }
        }
    });
    HeartbeatGuard {
        state,
        handle: Some(handle),
    }
}

impl Drop for HeartbeatGuard {
    fn drop(&mut self) {
        let (stopped, wake) = &*self.state;
        *stopped.lock().unwrap() = true;
        wake.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Runs one cell against a local testbed. Errors (unknown technique or
/// site name) are reported, not panicked: over the wire the coordinator
/// decides whether to retry elsewhere. Public because the `Dispatch::Local`
/// path in `bobw-bench` shares this exact code, so local and distributed
/// execution cannot drift apart.
pub fn execute_cell(tb: &Testbed, cell: &CellSpec) -> Result<CellOutput, String> {
    match cell {
        CellSpec::Failover { technique, site } => {
            let technique = Technique::parse(technique)?;
            let site = tb
                .cdn
                .by_name(site)
                .ok_or_else(|| format!("unknown site {site:?}"))?;
            let (result, perf) = try_run_failover_instrumented(tb, &technique, site)?;
            Ok(CellOutput::Failover(result, perf))
        }
        CellSpec::Control { site, prepends } => {
            let site = tb
                .cdn
                .by_name(site)
                .ok_or_else(|| format!("unknown site {site:?}"))?;
            let (result, perf) = measure_control_instrumented(tb, site, prepends);
            Ok(CellOutput::Control(result, perf))
        }
    }
}
