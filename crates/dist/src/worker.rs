//! The worker side: connect, handshake, pull cells, push results.
//!
//! A worker process runs [`run_worker`], which opens `threads` independent
//! connections to the coordinator — one per OS thread — so a multi-core
//! worker host contributes one work stream per core with zero shared
//! state between them. Each connection:
//!
//! 1. sends [`Hello`] with this build's fingerprint and waits for
//!    [`HelloReply::Welcome`] (a `Rejected` reply ends the worker with an
//!    error — a version-skewed binary must not compute cells);
//! 2. answers every [`ToWorker::Batch`] by (re)building a [`Testbed`] —
//!    cached across batches keyed by the config fingerprint, since most
//!    multi-batch runs (`repro_all`) reuse one config — and replying
//!    `Ready` (`Ready` *always* means "batch acknowledged, give me work");
//! 3. executes every [`ToWorker::Assign`] and streams back `Done`, with a
//!    background heartbeat renewing the cell's lease while it computes;
//! 4. exits on `Shutdown` or a closed socket.
//!
//! Determinism: the cell computation is exactly the same
//! `run_failover_instrumented` / `measure_control_instrumented` call a
//! local run makes, against a `Testbed` built from the coordinator's own
//! config — so a cell's bytes are identical no matter which process ran
//! it.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use bobw_core::{measure_control_instrumented, try_run_failover_instrumented, Technique, Testbed};

use crate::endpoint::{Conn, Endpoint};
use crate::proto::{
    build_fingerprint, config_fingerprint, CellOutput, CellSpec, FromWorker, Hello, HelloReply,
    ToWorker, PROTOCOL_VERSION,
};
use crate::wire::{recv, send};

/// How often a busy worker renews its lease on the cell it is computing.
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_secs(2);

/// Worker configuration.
pub struct WorkerConfig {
    /// Coordinator endpoint to connect to.
    pub connect: Endpoint,
    /// Parallel work streams (connections) this process contributes.
    pub threads: usize,
    /// Name reported in the handshake (logs only).
    pub name: String,
    /// How long to keep retrying the initial connect (workers usually
    /// race the coordinator's bind).
    pub connect_timeout: Duration,
}

impl WorkerConfig {
    pub fn new(connect: Endpoint) -> WorkerConfig {
        WorkerConfig {
            connect,
            threads: 1,
            name: format!("worker-{}", std::process::id()),
            connect_timeout: Duration::from_secs(10),
        }
    }
}

/// Runs a worker until the coordinator shuts it down or disconnects.
/// Returns the number of cells this process completed.
pub fn run_worker(cfg: &WorkerConfig) -> Result<u64, String> {
    let threads = cfg.threads.max(1);
    let completed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let name = if threads == 1 {
                cfg.name.clone()
            } else {
                format!("{}.{t}", cfg.name)
            };
            let completed = &completed;
            let connect = &cfg.connect;
            let timeout = cfg.connect_timeout;
            handles.push(scope.spawn(move || -> Result<(), String> {
                let conn = connect
                    .connect_with_retry(timeout)
                    .map_err(|e| format!("connect {connect}: {e}"))?;
                let n = serve_connection(conn, &name)?;
                completed.fetch_add(n, Ordering::Relaxed);
                Ok(())
            }));
        }
        for h in handles {
            h.join()
                .map_err(|_| "worker thread panicked".to_string())??;
        }
        Ok(completed.load(Ordering::Relaxed))
    })
}

/// One connection's work loop. Public for in-process tests, which drive a
/// worker against a coordinator over a loopback socket without spawning a
/// subprocess.
pub fn serve_connection(conn: Conn, name: &str) -> Result<u64, String> {
    conn.set_nodelay();
    let writer = Arc::new(Mutex::new(
        conn.try_clone().map_err(|e| format!("clone conn: {e}"))?,
    ));
    let mut reader = conn;

    // Handshake.
    send(
        &mut *writer.lock().unwrap(),
        &Hello {
            protocol: PROTOCOL_VERSION,
            fingerprint: build_fingerprint(),
            worker_name: name.to_string(),
        },
    )
    .map_err(|e| format!("handshake send: {e}"))?;
    match recv::<_, HelloReply>(&mut reader).map_err(|e| format!("handshake recv: {e}"))? {
        Some(HelloReply::Welcome) => {}
        Some(HelloReply::Rejected { reason }) => {
            return Err(format!("coordinator rejected worker {name}: {reason}"));
        }
        None => return Err("coordinator closed during handshake".into()),
    }

    // Testbed cache: most runs send many batches with one config.
    let mut testbed: Option<(u64, Testbed)> = None;
    let mut completed = 0u64;

    loop {
        let msg = match recv::<_, ToWorker>(&mut reader) {
            Ok(Some(m)) => m,
            // Clean EOF or a torn connection both mean "no more work".
            Ok(None) => break,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(format!("recv: {e}")),
        };
        match msg {
            ToWorker::Batch {
                batch_id,
                config_print,
                config,
            } => {
                let local_print = config_fingerprint(&config);
                if local_print != config_print {
                    // The config decoded differently than the coordinator
                    // encoded it — a codec bug; refuse loudly rather than
                    // compute wrong cells.
                    return Err(format!(
                        "batch {batch_id}: config fingerprint mismatch \
                         (coordinator {config_print:#x}, local {local_print:#x})"
                    ));
                }
                if testbed.as_ref().map(|(p, _)| *p) != Some(local_print) {
                    testbed = Some((local_print, Testbed::new(*config)));
                }
                send(&mut *writer.lock().unwrap(), &FromWorker::Ready)
                    .map_err(|e| format!("send: {e}"))?;
            }
            ToWorker::Assign {
                batch_id,
                cell_index,
                cell,
            } => {
                let Some((_, tb)) = testbed.as_ref() else {
                    return Err(format!("assigned cell {cell_index} before any batch"));
                };
                let _beat = heartbeat_guard(Arc::clone(&writer), batch_id, cell_index);
                let reply = match execute_cell(tb, &cell) {
                    Ok(output) => {
                        completed += 1;
                        FromWorker::Done {
                            batch_id,
                            cell_index,
                            output: Box::new(output),
                        }
                    }
                    Err(error) => FromWorker::Failed {
                        batch_id,
                        cell_index,
                        error,
                    },
                };
                send(&mut *writer.lock().unwrap(), &reply).map_err(|e| format!("send: {e}"))?;
            }
            ToWorker::Drain => {
                // Nothing to do: stay connected for the next batch.
            }
            ToWorker::Shutdown => break,
        }
    }
    Ok(completed)
}

/// A live heartbeat for one cell: a background thread sends
/// [`FromWorker::Heartbeat`] every [`HEARTBEAT_INTERVAL`] until dropped.
/// The thread waits on a condvar (not a plain sleep) so dropping the
/// guard after a short cell returns immediately instead of stalling the
/// work loop for the rest of the interval.
struct HeartbeatGuard {
    state: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

fn heartbeat_guard(writer: Arc<Mutex<Conn>>, batch_id: u64, cell_index: u64) -> HeartbeatGuard {
    let state = Arc::new((Mutex::new(false), Condvar::new()));
    let state2 = Arc::clone(&state);
    let handle = std::thread::spawn(move || {
        let (stopped, wake) = &*state2;
        let mut stopped = stopped.lock().unwrap();
        loop {
            let (guard, timeout) = wake.wait_timeout(stopped, HEARTBEAT_INTERVAL).unwrap();
            stopped = guard;
            if *stopped {
                return;
            }
            if timeout.timed_out() {
                let beat = FromWorker::Heartbeat {
                    batch_id,
                    cell_index,
                };
                if send(&mut *writer.lock().unwrap(), &beat).is_err() {
                    return; // connection gone; the main loop will notice too
                }
            }
        }
    });
    HeartbeatGuard {
        state,
        handle: Some(handle),
    }
}

impl Drop for HeartbeatGuard {
    fn drop(&mut self) {
        let (stopped, wake) = &*self.state;
        *stopped.lock().unwrap() = true;
        wake.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Runs one cell against a local testbed. Errors (unknown technique or
/// site name) are reported, not panicked: over the wire the coordinator
/// decides whether to retry elsewhere. Public because the `Dispatch::Local`
/// path in `bobw-bench` shares this exact code, so local and distributed
/// execution cannot drift apart.
pub fn execute_cell(tb: &Testbed, cell: &CellSpec) -> Result<CellOutput, String> {
    match cell {
        CellSpec::Failover { technique, site } => {
            let technique = Technique::parse(technique)?;
            let site = tb
                .cdn
                .by_name(site)
                .ok_or_else(|| format!("unknown site {site:?}"))?;
            let (result, perf) = try_run_failover_instrumented(tb, &technique, site)?;
            Ok(CellOutput::Failover(result, perf))
        }
        CellSpec::Control { site, prepends } => {
            let site = tb
                .cdn
                .by_name(site)
                .ok_or_else(|| format!("unknown site {site:?}"))?;
            let (result, perf) = measure_control_instrumented(tb, site, prepends);
            Ok(CellOutput::Control(result, perf))
        }
    }
}
