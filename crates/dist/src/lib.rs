//! # bobw-dist
//!
//! Distributed cell execution: a coordinator/worker runner over a framed
//! socket protocol (TCP or Unix-domain).
//!
//! The paper's evaluation is a grid of independent ⟨technique, failed
//! site, seed⟩ cells; `--scale large` sweeps outgrow one process on one
//! machine. This crate fans the same deterministic cell grid the local
//! runner executes (`bobw_bench::runner`) across worker *processes*:
//!
//! * [`coordinator`] — enumerates cells, leases them to workers with
//!   heartbeat-renewed timeouts, reassigns cells of dead or stalled
//!   workers (first completion wins), and merges results in cell-index
//!   order — so distributed `results/*.json` are byte-identical to a
//!   local `--jobs 1` run.
//! * [`worker`] — connects (`bobw-worker` binary or `bobw worker`
//!   subcommand), proves via a build fingerprint that its generator
//!   produces the same worlds, builds a local `Testbed` from the config
//!   shipped in each batch, and streams back `(cell_index, result,
//!   CellPerf)` records.
//! * [`wire`] — the hand-rolled binary codec (the vendored serde stub
//!   cannot deserialize) with exact `f64` bit-pattern round-trips, plus
//!   the length-prefixed frame layer.
//! * [`proto`] — the message set and the `Wire` encodings of the
//!   experiment config/result types.
//! * [`endpoint`] — `tcp://host:port` and `unix://path` transports.
//! * [`interrupt`] — Ctrl-C detection for the coordinator's graceful
//!   drain.

pub mod auth;
pub mod coordinator;
pub mod endpoint;
pub mod interrupt;
pub mod proto;
pub mod wire;
pub mod worker;

pub use auth::{AuthSecret, SECRET_ENV};
pub use coordinator::{
    vet_client, Coordinator, CoordinatorConfig, WorkerPort, WorkerStat, MAX_ASSIGNMENTS,
};
pub use endpoint::{Conn, Endpoint, Listener};
pub use interrupt::{install_sigint_handler, interrupted};
pub use proto::{
    build_fingerprint, config_fingerprint, CellOutput, CellSpec, Challenge, ClientHello,
    FromWorker, Greeting, Hello, HelloReply, ToWorker, PROTOCOL_VERSION,
};
pub use wire::{Wire, WireError, MAX_FRAME};
pub use worker::{execute_cell, run_worker, WorkerConfig};
