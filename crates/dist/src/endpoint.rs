//! Socket endpoints: `tcp://host:port` and `unix://path`.
//!
//! One enum covers both transports so the coordinator and worker code is
//! transport-agnostic; everything above this module reads and writes
//! frames through [`Conn`].

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

/// A parsed endpoint URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// `tcp://host:port` (bind or connect address).
    Tcp(String),
    /// `unix:///path/to.sock`.
    Unix(String),
}

impl Endpoint {
    /// Parses `tcp://addr:port` or `unix://path`.
    pub fn parse(url: &str) -> Result<Endpoint, String> {
        if let Some(addr) = url.strip_prefix("tcp://") {
            if addr.is_empty() {
                return Err(format!("empty tcp endpoint {url:?}"));
            }
            Ok(Endpoint::Tcp(addr.to_string()))
        } else if let Some(path) = url.strip_prefix("unix://") {
            if path.is_empty() {
                return Err(format!("empty unix endpoint {url:?}"));
            }
            if cfg!(not(unix)) {
                return Err("unix:// endpoints are not supported on this platform".into());
            }
            Ok(Endpoint::Unix(path.to_string()))
        } else {
            Err(format!(
                "bad endpoint {url:?} (expected tcp://host:port or unix://path)"
            ))
        }
    }

    /// Binds a listener on this endpoint. A pre-existing Unix socket file
    /// is removed first (the usual stale-socket dance).
    pub fn bind(&self) -> io::Result<Listener> {
        match self {
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets unavailable",
            )),
        }
    }

    /// Connects to this endpoint.
    pub fn connect(&self) -> io::Result<Conn> {
        match self {
            Endpoint::Tcp(addr) => Ok(Conn::Tcp(TcpStream::connect(addr)?)),
            #[cfg(unix)]
            Endpoint::Unix(path) => Ok(Conn::Unix(UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            Endpoint::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets unavailable",
            )),
        }
    }

    /// Connects, retrying for up to `deadline` while the coordinator may
    /// still be starting up (workers usually race the coordinator's bind).
    pub fn connect_with_retry(&self, deadline: Duration) -> io::Result<Conn> {
        let start = std::time::Instant::now();
        loop {
            match self.connect() {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix://{path}"),
        }
    }
}

/// A bound listener on either transport.
pub enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, String),
}

impl Listener {
    /// Accepts one connection, blocking.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => Ok(Conn::Tcp(l.accept()?.0)),
            #[cfg(unix)]
            Listener::Unix(l, _) => Ok(Conn::Unix(l.accept()?.0)),
        }
    }

    /// The locally bound address, URL-formatted. For `tcp://host:0` binds
    /// this reports the real port — the loopback tests depend on it.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            Listener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One established connection on either transport. Cloning duplicates the
/// OS handle (both clones address the same socket), which lets a reader
/// thread and a writer thread share a connection.
pub enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => Ok(Conn::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            Conn::Unix(s) => Ok(Conn::Unix(s.try_clone()?)),
        }
    }

    /// Shuts down both directions, unblocking any thread mid-read.
    pub fn shutdown(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// Disables Nagle's algorithm on TCP (frames are small and latency
    /// matters for heartbeats); a no-op for Unix sockets.
    pub fn set_nodelay(&self) {
        if let Conn::Tcp(s) = self {
            let _ = s.set_nodelay(true);
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_both_schemes() {
        assert_eq!(
            Endpoint::parse("tcp://127.0.0.1:9000").unwrap(),
            Endpoint::Tcp("127.0.0.1:9000".into())
        );
        assert_eq!(
            Endpoint::parse("unix:///tmp/x.sock").unwrap(),
            Endpoint::Unix("/tmp/x.sock".into())
        );
        assert!(Endpoint::parse("http://nope").is_err());
        assert!(Endpoint::parse("tcp://").is_err());
        assert!(Endpoint::parse("unix://").is_err());
    }

    #[test]
    fn display_round_trips() {
        for url in ["tcp://127.0.0.1:1234", "unix:///tmp/a.sock"] {
            assert_eq!(Endpoint::parse(url).unwrap().to_string(), url);
        }
    }

    #[test]
    fn tcp_loopback_frames() {
        use crate::wire::{read_frame, write_frame};
        let listener = Endpoint::parse("tcp://127.0.0.1:0")
            .unwrap()
            .bind()
            .unwrap();
        let ep = listener.local_endpoint().unwrap();
        let t = std::thread::spawn(move || {
            let mut c = listener.accept().unwrap();
            let got = read_frame(&mut c).unwrap().unwrap();
            write_frame(&mut c, &got).unwrap();
        });
        let mut c = ep.connect().unwrap();
        write_frame(&mut c, b"ping").unwrap();
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"ping");
        t.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unix_loopback_frames() {
        use crate::wire::{read_frame, write_frame};
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bobw-dist-test-{}.sock", std::process::id()));
        let url = format!("unix://{}", path.display());
        let listener = Endpoint::parse(&url).unwrap().bind().unwrap();
        let ep = listener.local_endpoint().unwrap();
        let t = std::thread::spawn(move || {
            let mut c = listener.accept().unwrap();
            let got = read_frame(&mut c).unwrap().unwrap();
            write_frame(&mut c, &got).unwrap();
        });
        let mut c = ep.connect().unwrap();
        write_frame(&mut c, b"pong").unwrap();
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"pong");
        t.join().unwrap();
        assert!(!path.exists(), "socket file cleaned up on drop");
    }
}
