//! Protocol messages and [`Wire`] encodings for the experiment types.
//!
//! The coordinator ships the **full `ExperimentConfig`** in each batch
//! header rather than asking workers to reconstruct it from CLI flags:
//! ablation studies mutate a dozen config knobs (MRAI bands, detection
//! delay, flap damping, reaction faults, …) that no flag set could
//! express, and a worker building even a slightly different config would
//! silently produce different — deterministically wrong — results.
//!
//! The *handshake* fingerprint guards against a subtler hazard: two
//! builds that parse the same config but whose topology generators (or
//! RNG streams) diverged. [`build_fingerprint`] hashes the protocol
//! version together with the JSON rendering of a topology generated from
//! a fixed canonical config; any semantic drift in the generator changes
//! the hash and the coordinator rejects the worker at `Hello` time
//! instead of merging corrupt cells.

use std::sync::OnceLock;

use bobw_core::{
    CellPerf, ControlResult, ExperimentConfig, FailoverResult, FailureMode, ReactionFault,
};
use bobw_event::{RngFactory, SimDuration, SimTime};
use bobw_net::Prefix;
use bobw_topology::{generate, GenConfig, SiteAttachment, SiteId, SiteSpec};

use crate::wire::{Wire, WireError};
use crate::wire_struct;

/// Bump on any incompatible change to the message set or an encoding.
/// v2: `ExperimentConfig` carries an optional fault scenario.
/// v3: `ExperimentConfig` carries an optional traffic layer; results
/// carry its summary.
/// v4: challenge/HMAC handshake (server sends [`Challenge`] first, peers
/// answer with a [`Greeting`]), multiplexed workers (`Hello` advertises
/// a capacity, `Ready` reports testbed-cache hits), client greetings for
/// the `bobw serve` job service, and `TrafficSummary` gains scrubbed
/// volume.
/// v5: `CellPerf` reports the final event-queue capacity.
/// v6: `ExperimentConfig` carries the session model (abstract vs
/// message-level FSMs) and `TrafficConfig` carries per-region capacity
/// overrides. Scenarios still cross as JSON, so the session-fault actions
/// need no encoding change.
pub const PROTOCOL_VERSION: u32 = 6;

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

/// FNV-1a, the same construction the vendored proptest stub uses — small,
/// stable, and plenty for equality fingerprints (this is not security).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of this *build's* experiment semantics: protocol version
/// plus the JSON of a topology generated from a fixed canonical config.
/// Two binaries agree iff their generators (and the RNG streams beneath
/// them) produce identical worlds.
pub fn build_fingerprint() -> u64 {
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        let cfg = GenConfig::tiny();
        let rng = RngFactory::new(0xb0b3_d157);
        let (topo, _) = generate(&cfg, &rng);
        let json = serde_json::to_string(&topo).expect("topology serializes");
        fnv1a(json.as_bytes()) ^ ((PROTOCOL_VERSION as u64) << 56)
    })
}

/// Fingerprint of one experiment config — the worker's testbed cache key
/// and a per-batch sanity check.
pub fn config_fingerprint(cfg: &ExperimentConfig) -> u64 {
    let json = serde_json::to_string(cfg).expect("config serializes");
    fnv1a(json.as_bytes())
}

// ---------------------------------------------------------------------------
// Cell descriptions and outputs
// ---------------------------------------------------------------------------

/// One unit of distributable work. Sites travel by *name* (the grids in
/// `ablation.rs` and friends are written in site names) and techniques by
/// their paper name, which round-trips through `Technique::parse`.
#[derive(Debug, Clone, PartialEq)]
pub enum CellSpec {
    /// A §5.2 failover experiment: run `technique`, fail `site`.
    Failover { technique: String, site: String },
    /// A Table 1 control measurement of `site` across `prepends`.
    Control { site: String, prepends: Vec<u8> },
}

/// The result of one executed cell, mirroring [`CellSpec`].
#[derive(Debug, Clone)]
pub enum CellOutput {
    Failover(FailoverResult, CellPerf),
    Control(ControlResult, CellPerf),
}

impl CellOutput {
    pub fn perf(&self) -> CellPerf {
        match self {
            CellOutput::Failover(_, p) | CellOutput::Control(_, p) => *p,
        }
    }
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// First frame the *server* (coordinator or `bobw serve` daemon) sends
/// on every accepted connection: a fresh nonce the peer must fold into
/// its authentication tag, plus whether a tag is required at all (no
/// configured secret ⇒ open, the pre-v4 behavior).
#[derive(Debug, Clone, PartialEq)]
pub struct Challenge {
    pub nonce: Vec<u8>,
    pub auth_required: bool,
}

/// First frame a peer sends after the [`Challenge`]: identifies the
/// connection as a cell-computing worker or a job-service client. A
/// plain batch coordinator rejects `Client` greetings; the `bobw serve`
/// daemon accepts both on one listener.
#[derive(Debug, Clone, PartialEq)]
pub enum Greeting {
    Worker(Hello),
    Client(ClientHello),
}

/// Worker half of a [`Greeting`].
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    pub protocol: u32,
    /// [`build_fingerprint`] of the worker's binary.
    pub fingerprint: u64,
    /// Human-readable worker name for logs (hostname/pid by default).
    pub worker_name: String,
    /// Concurrent cells this worker computes (its `--threads`); the
    /// coordinator assigns up to this many cells over the one connection.
    pub capacity: u32,
    /// HMAC tag over (nonce, protocol, fingerprint, name); empty when the
    /// worker has no secret configured.
    pub auth: Vec<u8>,
}

/// Client half of a [`Greeting`] (submit/watch/status connections).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientHello {
    pub protocol: u32,
    /// Human-readable client name for logs.
    pub client_name: String,
    /// HMAC tag over (nonce, protocol, name); empty when unauthenticated.
    pub auth: Vec<u8>,
}

/// Coordinator's answer to a [`Hello`].
#[derive(Debug, Clone, PartialEq)]
pub enum HelloReply {
    Welcome,
    /// The worker must exit; `reason` is for its log.
    Rejected {
        reason: String,
    },
}

/// Coordinator → worker after the handshake.
#[derive(Debug, Clone)]
pub enum ToWorker {
    /// Announces a batch: workers (re)build their testbed for `config`
    /// (cached across batches by [`config_fingerprint`]).
    Batch {
        batch_id: u64,
        config_print: u64,
        /// Boxed to keep the enum lease-message-sized (the config dwarfs
        /// every other variant).
        config: Box<ExperimentConfig>,
    },
    /// Assigns one cell of the current batch.
    Assign {
        batch_id: u64,
        cell_index: u64,
        cell: CellSpec,
    },
    /// No more cells in this batch; idle until the next `Batch`.
    Drain,
    /// The run is over; the worker exits.
    Shutdown,
}

/// Worker → coordinator after the handshake.
#[derive(Debug, Clone)]
pub enum FromWorker {
    /// Acknowledges a `Batch`: the testbed for its config is up (either
    /// freshly built or — `cache_hit` — served warm from the worker's
    /// process-wide cache) and the worker will accept assignments.
    Ready { cache_hit: bool },
    /// Still alive and still computing `cell_index` (lease renewal).
    Heartbeat { batch_id: u64, cell_index: u64 },
    /// A finished cell. Boxed to keep the enum heartbeat-sized (the
    /// result dwarfs every other variant).
    Done {
        batch_id: u64,
        cell_index: u64,
        output: Box<CellOutput>,
    },
    /// The worker could not run the cell (bad technique name, unknown
    /// site, …). The coordinator treats the worker as poisoned for this
    /// cell and reassigns elsewhere.
    Failed {
        batch_id: u64,
        cell_index: u64,
        error: String,
    },
}

// ---------------------------------------------------------------------------
// Wire impls — protocol messages
// ---------------------------------------------------------------------------

wire_struct!(Hello {
    protocol,
    fingerprint,
    worker_name,
    capacity,
    auth
});

wire_struct!(ClientHello {
    protocol,
    client_name,
    auth
});

wire_struct!(Challenge {
    nonce,
    auth_required
});

impl Wire for Greeting {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Greeting::Worker(h) => {
                0u32.encode(out);
                h.encode(out);
            }
            Greeting::Client(h) => {
                1u32.encode(out);
                h.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u32::decode(buf)? {
            0 => Ok(Greeting::Worker(Hello::decode(buf)?)),
            1 => Ok(Greeting::Client(ClientHello::decode(buf)?)),
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
}

impl Wire for HelloReply {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            HelloReply::Welcome => 0u32.encode(out),
            HelloReply::Rejected { reason } => {
                1u32.encode(out);
                reason.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u32::decode(buf)? {
            0 => Ok(HelloReply::Welcome),
            1 => Ok(HelloReply::Rejected {
                reason: String::decode(buf)?,
            }),
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
}

impl Wire for CellSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CellSpec::Failover { technique, site } => {
                0u32.encode(out);
                technique.encode(out);
                site.encode(out);
            }
            CellSpec::Control { site, prepends } => {
                1u32.encode(out);
                site.encode(out);
                prepends.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u32::decode(buf)? {
            0 => Ok(CellSpec::Failover {
                technique: String::decode(buf)?,
                site: String::decode(buf)?,
            }),
            1 => Ok(CellSpec::Control {
                site: String::decode(buf)?,
                prepends: Vec::decode(buf)?,
            }),
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
}

impl Wire for CellOutput {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CellOutput::Failover(r, p) => {
                0u32.encode(out);
                r.encode(out);
                p.encode(out);
            }
            CellOutput::Control(r, p) => {
                1u32.encode(out);
                r.encode(out);
                p.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u32::decode(buf)? {
            0 => Ok(CellOutput::Failover(
                FailoverResult::decode(buf)?,
                CellPerf::decode(buf)?,
            )),
            1 => Ok(CellOutput::Control(
                ControlResult::decode(buf)?,
                CellPerf::decode(buf)?,
            )),
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
}

impl Wire for ToWorker {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ToWorker::Batch {
                batch_id,
                config_print,
                config,
            } => {
                0u32.encode(out);
                batch_id.encode(out);
                config_print.encode(out);
                config.encode(out);
            }
            ToWorker::Assign {
                batch_id,
                cell_index,
                cell,
            } => {
                1u32.encode(out);
                batch_id.encode(out);
                cell_index.encode(out);
                cell.encode(out);
            }
            ToWorker::Drain => 2u32.encode(out),
            ToWorker::Shutdown => 3u32.encode(out),
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u32::decode(buf)? {
            0 => Ok(ToWorker::Batch {
                batch_id: u64::decode(buf)?,
                config_print: u64::decode(buf)?,
                config: Box::new(ExperimentConfig::decode(buf)?),
            }),
            1 => Ok(ToWorker::Assign {
                batch_id: u64::decode(buf)?,
                cell_index: u64::decode(buf)?,
                cell: CellSpec::decode(buf)?,
            }),
            2 => Ok(ToWorker::Drain),
            3 => Ok(ToWorker::Shutdown),
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
}

impl Wire for FromWorker {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            FromWorker::Ready { cache_hit } => {
                0u32.encode(out);
                cache_hit.encode(out);
            }
            FromWorker::Heartbeat {
                batch_id,
                cell_index,
            } => {
                1u32.encode(out);
                batch_id.encode(out);
                cell_index.encode(out);
            }
            FromWorker::Done {
                batch_id,
                cell_index,
                output,
            } => {
                2u32.encode(out);
                batch_id.encode(out);
                cell_index.encode(out);
                output.encode(out);
            }
            FromWorker::Failed {
                batch_id,
                cell_index,
                error,
            } => {
                3u32.encode(out);
                batch_id.encode(out);
                cell_index.encode(out);
                error.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u32::decode(buf)? {
            0 => Ok(FromWorker::Ready {
                cache_hit: bool::decode(buf)?,
            }),
            1 => Ok(FromWorker::Heartbeat {
                batch_id: u64::decode(buf)?,
                cell_index: u64::decode(buf)?,
            }),
            2 => Ok(FromWorker::Done {
                batch_id: u64::decode(buf)?,
                cell_index: u64::decode(buf)?,
                output: Box::new(CellOutput::decode(buf)?),
            }),
            3 => Ok(FromWorker::Failed {
                batch_id: u64::decode(buf)?,
                cell_index: u64::decode(buf)?,
                error: String::decode(buf)?,
            }),
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire impls — simulator time, ids, prefixes
// ---------------------------------------------------------------------------

impl Wire for SimDuration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_nanos().encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SimDuration::from_nanos(u64::decode(buf)?))
    }
}

impl Wire for SimTime {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_nanos().encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SimTime::from_nanos(u64::decode(buf)?))
    }
}

impl Wire for SiteId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SiteId(u8::decode(buf)?))
    }
}

impl Wire for Prefix {
    fn encode(&self, out: &mut Vec<u8>) {
        self.bits().encode(out);
        self.len().encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let bits = u32::decode(buf)?;
        let len = u8::decode(buf)?;
        if len > 32 {
            return Err(WireError::Invalid("prefix length > 32"));
        }
        Ok(Prefix::new(bits, len))
    }
}

// ---------------------------------------------------------------------------
// Wire impls — experiment configuration
// ---------------------------------------------------------------------------

impl Wire for SiteAttachment {
    fn encode(&self, out: &mut Vec<u8>) {
        let (d, n) = match self {
            SiteAttachment::TransitProviders(n) => (0u32, *n),
            SiteAttachment::RemoteTransitProviders(n) => (1, *n),
            SiteAttachment::Tier1Providers(n) => (2, *n),
            SiteAttachment::ResearchEduProviders(n) => (3, *n),
            SiteAttachment::EyeballPeers(n) => (4, *n),
            SiteAttachment::TransitPeers(n) => (5, *n),
        };
        d.encode(out);
        n.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let d = u32::decode(buf)?;
        let n = usize::decode(buf)?;
        Ok(match d {
            0 => SiteAttachment::TransitProviders(n),
            1 => SiteAttachment::RemoteTransitProviders(n),
            2 => SiteAttachment::Tier1Providers(n),
            3 => SiteAttachment::ResearchEduProviders(n),
            4 => SiteAttachment::EyeballPeers(n),
            5 => SiteAttachment::TransitPeers(n),
            d => return Err(WireError::BadDiscriminant(d)),
        })
    }
}

wire_struct!(SiteSpec {
    name,
    region,
    attachments
});

wire_struct!(GenConfig {
    tier1,
    transit,
    rne,
    eyeballs,
    stubs,
    transit_peer_prob,
    transit_cross_peers,
    stub_rne_fraction,
    transit_extra_tier1,
    eyeball_providers,
    stub_providers,
    rne_peers,
    ixps,
    ixp_member_prob,
    sites
});

wire_struct!(bobw_bgp::DampingConfig {
    withdrawal_penalty,
    update_penalty,
    suppress_threshold,
    reuse_threshold,
    half_life,
    max_penalty
});

wire_struct!(bobw_bgp::BgpTimingConfig {
    mrai_min_s,
    mrai_max_s,
    mrai_jitter_lo,
    mrai_jitter_hi,
    announce_proc_median_s,
    announce_proc_sigma,
    withdraw_proc_median_s,
    withdraw_proc_sigma,
    mrai_slow_fraction,
    mrai_slow_multiplier,
    hold_time_s,
    flap_damping,
    withdrawal_rate_limiting
});

wire_struct!(bobw_dataplane::ProbeConfig {
    interval,
    duration,
    source_offset
});

wire_struct!(bobw_core::AddressPlan {
    covering,
    specific,
    rtt_probe,
    anycast_probe,
    source_offset,
    site_block
});

impl Wire for FailureMode {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            FailureMode::GracefulWithdrawal => 0u32.encode(out),
            FailureMode::SilentCrash => 1u32.encode(out),
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u32::decode(buf)? {
            0 => Ok(FailureMode::GracefulWithdrawal),
            1 => Ok(FailureMode::SilentCrash),
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
}

impl Wire for ReactionFault {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ReactionFault::SkipSites(n) => {
                0u32.encode(out);
                n.encode(out);
            }
            ReactionFault::WrongPrefix => 1u32.encode(out),
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u32::decode(buf)? {
            0 => Ok(ReactionFault::SkipSites(usize::decode(buf)?)),
            1 => Ok(ReactionFault::WrongPrefix),
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
}

// Scenarios cross the wire as their canonical JSON and are re-parsed with
// the *typed* deserializer on arrival, so a worker rejects a structurally
// invalid scenario at decode time — before it can build a testbed from it.
impl Wire for bobw_scenario::Scenario {
    fn encode(&self, out: &mut Vec<u8>) {
        serde_json::to_string(self)
            .expect("scenario serializes")
            .encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let json = String::decode(buf)?;
        serde_json::from_str_typed(&json).map_err(|_| WireError::Invalid("malformed scenario"))
    }
}

impl Wire for bobw_core::SessionModel {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            bobw_core::SessionModel::Abstract => 0u32.encode(out),
            bobw_core::SessionModel::MessageLevel => 1u32.encode(out),
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u32::decode(buf)? {
            0 => Ok(bobw_core::SessionModel::Abstract),
            1 => Ok(bobw_core::SessionModel::MessageLevel),
            d => Err(WireError::BadDiscriminant(d)),
        }
    }
}

wire_struct!(ExperimentConfig {
    gen,
    timing,
    probe,
    plan,
    targets_per_site,
    proximity_ms,
    detection_delay,
    failure_mode,
    reaction_fault,
    pre_failure_flaps,
    scenario,
    traffic,
    session_model,
    seed,
    max_events
});

wire_struct!(bobw_core::RegionCapacity { region, factor });

wire_struct!(bobw_core::TrafficConfig {
    capacity_headroom,
    utilization_ceiling,
    tick_interval_s,
    control_every,
    resteer_ttl_s,
    diurnal_amplitude,
    diurnal_period_s,
    region_capacity
});

// ---------------------------------------------------------------------------
// Wire impls — results
// ---------------------------------------------------------------------------

wire_struct!(bobw_core::TargetOutcome {
    reconnection,
    failover,
    final_site,
    bounces,
    losses_after_reconnect
});

wire_struct!(FailoverResult {
    technique,
    site_name,
    failed_site,
    num_candidates,
    num_selected,
    num_controllable,
    outcomes,
    t_fail,
    traffic
});

wire_struct!(bobw_core::TrafficSummary {
    ticks,
    peak_utilization_before,
    peak_utilization_after,
    offered,
    served,
    shed,
    scrubbed,
    unserved,
    resteers,
    target_weights
});

wire_struct!(ControlResult {
    site_name,
    site,
    num_near,
    frac_not_anycast_routed,
    steered
});

wire_struct!(CellPerf {
    events_processed,
    peak_queue_depth,
    queue_capacity,
    wall_micros
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_exact, encode_vec};

    #[test]
    fn experiment_config_round_trips_exactly() {
        // A config with every optional knob exercised — the ablation bins'
        // mutations must survive the wire bit-for-bit.
        let mut cfg = ExperimentConfig::quick(99);
        cfg.timing.flap_damping = Some(bobw_bgp::DampingConfig::default());
        cfg.timing.withdrawal_rate_limiting = true;
        cfg.timing.mrai_min_s *= 0.25;
        cfg.failure_mode = FailureMode::SilentCrash;
        cfg.reaction_fault = Some(ReactionFault::SkipSites(3));
        cfg.pre_failure_flaps = 4;
        cfg.detection_delay = SimDuration::from_nanos(123_456_789);
        cfg.scenario = Some(bobw_scenario::Scenario::site_failure(2.5, 3));
        cfg.traffic = Some(bobw_core::TrafficConfig {
            capacity_headroom: 1.25,
            control_every: 5,
            region_capacity: vec![
                bobw_core::RegionCapacity {
                    region: "seattle".into(),
                    factor: 2.0,
                },
                bobw_core::RegionCapacity {
                    region: "boston".into(),
                    factor: 0.5,
                },
            ],
            ..Default::default()
        });
        cfg.session_model = bobw_core::SessionModel::MessageLevel;
        let bytes = encode_vec(&cfg);
        let back: ExperimentConfig = decode_exact(&bytes).unwrap();
        // The vendored serde can't derive PartialEq-able configs, but JSON
        // rendering is canonical: equal JSON ⇒ equal config.
        assert_eq!(
            serde_json::to_string(&cfg).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
        assert_eq!(config_fingerprint(&cfg), config_fingerprint(&back));
    }

    #[test]
    fn cell_messages_round_trip() {
        let spec = CellSpec::Failover {
            technique: "proactive-prepending-3-selective".into(),
            site: "sea1".into(),
        };
        let bytes = encode_vec(&spec);
        assert_eq!(decode_exact::<CellSpec>(&bytes).unwrap(), spec);

        let spec = CellSpec::Control {
            site: "ams".into(),
            prepends: vec![3, 5],
        };
        let bytes = encode_vec(&spec);
        assert_eq!(decode_exact::<CellSpec>(&bytes).unwrap(), spec);

        let hello = Hello {
            protocol: PROTOCOL_VERSION,
            fingerprint: build_fingerprint(),
            worker_name: "w-1".into(),
            capacity: 8,
            auth: vec![0xaa; 32],
        };
        let bytes = encode_vec(&hello);
        assert_eq!(decode_exact::<Hello>(&bytes).unwrap(), hello);

        let challenge = Challenge {
            nonce: crate::auth::fresh_nonce(),
            auth_required: true,
        };
        let bytes = encode_vec(&challenge);
        assert_eq!(decode_exact::<Challenge>(&bytes).unwrap(), challenge);

        let greeting = Greeting::Client(ClientHello {
            protocol: PROTOCOL_VERSION,
            client_name: "cli".into(),
            auth: Vec::new(),
        });
        let bytes = encode_vec(&greeting);
        assert_eq!(decode_exact::<Greeting>(&bytes).unwrap(), greeting);

        let reply = HelloReply::Rejected {
            reason: "fingerprint mismatch".into(),
        };
        let bytes = encode_vec(&reply);
        assert_eq!(decode_exact::<HelloReply>(&bytes).unwrap(), reply);
    }

    #[test]
    fn failover_result_round_trips_via_execution() {
        use bobw_core::{run_failover_instrumented, Technique, Testbed};
        let mut cfg = ExperimentConfig::quick(7);
        cfg.targets_per_site = 20;
        let tb = Testbed::new(cfg);
        let site = tb.site("bos");
        let (r, perf) = run_failover_instrumented(&tb, &Technique::ReactiveAnycast, site);
        let out = CellOutput::Failover(r.clone(), perf);
        let bytes = encode_vec(&out);
        let back: CellOutput = decode_exact(&bytes).unwrap();
        let CellOutput::Failover(r2, p2) = back else {
            panic!("wrong variant");
        };
        assert_eq!(r.outcomes, r2.outcomes);
        assert_eq!(r.site_name, r2.site_name);
        assert_eq!(r.t_fail, r2.t_fail);
        assert_eq!(r.num_candidates, r2.num_candidates);
        assert_eq!(perf.events_processed, p2.events_processed);
        // JSON rendering — what actually lands in results/*.json — must be
        // identical after a wire round trip.
        assert_eq!(
            serde_json::to_string(&r).unwrap(),
            serde_json::to_string(&r2).unwrap()
        );
    }

    /// A traffic-enabled cell's summary (peak utilizations, shed volume,
    /// demand weights) must survive the wire bit-for-bit — the extended
    /// resilience matrix is computed on the coordinator from these.
    #[test]
    fn traffic_summary_round_trips_via_execution() {
        use bobw_core::{run_failover_instrumented, Technique, Testbed};
        let mut cfg = ExperimentConfig::quick(7);
        cfg.targets_per_site = 20;
        cfg.traffic = Some(bobw_core::TrafficConfig::default());
        let tb = Testbed::new(cfg);
        let site = tb.site("bos");
        let (r, perf) = run_failover_instrumented(&tb, &Technique::ReactiveAnycast, site);
        assert!(r.traffic.is_some(), "traffic layer must have observed");
        let bytes = encode_vec(&CellOutput::Failover(r.clone(), perf));
        let back: CellOutput = decode_exact(&bytes).unwrap();
        let CellOutput::Failover(r2, _) = back else {
            panic!("wrong variant");
        };
        assert_eq!(r.traffic, r2.traffic);
        assert_eq!(
            serde_json::to_string(&r).unwrap(),
            serde_json::to_string(&r2).unwrap()
        );
    }

    #[test]
    fn build_fingerprint_is_stable_within_a_build() {
        assert_eq!(build_fingerprint(), build_fingerprint());
        assert_ne!(build_fingerprint(), 0);
    }

    /// A scenario that crossed the wire must compile to a byte-identical
    /// event list on the worker — including the RNG-jittered flap cycles,
    /// which is what coordinator/worker byte-identity of results rests on.
    #[test]
    fn scenario_compiles_identically_after_wire_round_trip() {
        use bobw_core::Testbed;
        use bobw_scenario::{compile, Scenario, ScenarioAction, ScenarioEvent};

        let mut scenario = Scenario::site_failure(2.0, 0);
        scenario.events.insert(
            0,
            ScenarioEvent {
                at_s: 1.0,
                action: ScenarioAction::Flap {
                    site: "$site".into(),
                    count: 3,
                    period_s: 3.0,
                    down_s: 1.0,
                    jitter_s: 1.5,
                },
            },
        );
        let bytes = encode_vec(&scenario);
        let back: Scenario = decode_exact(&bytes).unwrap();
        assert_eq!(back, scenario);

        let tb = Testbed::new(ExperimentConfig::quick(7));
        let site = tb.site("bos");
        let local = compile(&scenario, &tb.topo, &tb.cdn, &tb.rng, site, true).unwrap();
        let remote = compile(&back, &tb.topo, &tb.cdn, &tb.rng, site, true).unwrap();
        assert_eq!(local, remote);
        assert_eq!(
            serde_json::to_string(&local).unwrap(),
            serde_json::to_string(&remote).unwrap()
        );
    }

    /// Malformed scenario JSON is rejected at decode time, before a
    /// worker could try to build a testbed from it.
    #[test]
    fn malformed_scenario_is_rejected_at_decode() {
        let bytes = encode_vec(&"{\"name\": \"x\"}".to_string());
        let err = decode_exact::<bobw_scenario::Scenario>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::Invalid("malformed scenario")));
    }
}
