//! The wire codec: a compact, deterministic binary encoding plus a
//! length-prefixed frame layer.
//!
//! The workspace's vendored serde stub serializes but cannot deserialize,
//! so the distributed runner carries its own bincode-style codec. Encoding
//! rules:
//!
//! - fixed-width integers are little-endian;
//! - `usize` travels as `u64` (checked on decode);
//! - `f64` travels as its IEEE-754 bit pattern (`to_bits`), so values
//!   round-trip *exactly* — a requirement for byte-identical results;
//! - `String`/`Vec` are a `u64` length followed by the elements;
//! - `Option` is a presence byte followed by the value;
//! - structs are their fields in declaration order (see [`wire_struct!`]);
//! - enums are a `u32` discriminant followed by the variant's fields.
//!
//! Frames are `u32` little-endian payload length + payload, capped at
//! [`MAX_FRAME`] so a corrupt or hostile peer cannot make the receiver
//! allocate unbounded memory. Truncated and oversized frames surface as
//! typed errors (exercised by the codec tests).

use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload. A full eval-scale cell result is well
/// under 1 MiB; 64 MiB leaves room for large-scale grids while still
/// rejecting garbage length prefixes.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Decoding failure: malformed bytes, not an I/O problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A length prefix exceeded [`MAX_FRAME`] or a sane element bound.
    Oversized(u64),
    /// An enum discriminant no decoder recognizes.
    BadDiscriminant(u32),
    /// Bytes were left over after the top-level value was decoded.
    TrailingBytes(usize),
    /// A value was syntactically valid but semantically impossible
    /// (e.g. a non-UTF-8 string or a `usize` overflow on a 32-bit host).
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated value"),
            WireError::Oversized(n) => write!(f, "length {n} exceeds frame bounds"),
            WireError::BadDiscriminant(d) => write!(f, "unknown enum discriminant {d}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            WireError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// A type that can encode itself to bytes and decode itself back.
///
/// `decode` consumes from the front of the slice; the caller checks for
/// trailing bytes at the top level (see [`decode_exact`]).
pub trait Wire: Sized {
    fn encode(&self, out: &mut Vec<u8>);
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;
}

/// Encodes a value to a fresh byte vector.
pub fn encode_vec<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    value.encode(&mut out);
    out
}

/// Decodes a value, requiring the buffer to be fully consumed.
pub fn decode_exact<T: Wire>(mut buf: &[u8]) -> Result<T, WireError> {
    let v = T::decode(&mut buf)?;
    if buf.is_empty() {
        Ok(v)
    } else {
        Err(WireError::TrailingBytes(buf.len()))
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if buf.len() < n {
        return Err(WireError::Truncated);
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
                let bytes = take(buf, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i64);

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let v = u64::decode(buf)?;
        usize::try_from(v).map_err(|_| WireError::Invalid("usize overflow"))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            d => Err(WireError::BadDiscriminant(d as u32)),
        }
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::decode(buf)?))
    }
}

/// Length guard for decoded containers: a declared length may not exceed
/// what the remaining buffer could possibly hold (one byte per element
/// minimum), which bounds allocation before reading elements.
fn checked_len(buf: &[u8], declared: u64) -> Result<usize, WireError> {
    if declared > MAX_FRAME as u64 || declared > buf.len() as u64 {
        return Err(WireError::Oversized(declared));
    }
    Ok(declared as usize)
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let len = u64::decode(buf)?;
        let len = checked_len(buf, len)?;
        let bytes = take(buf, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("non-utf8 string"))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            d => Err(WireError::BadDiscriminant(d as u32)),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let len = u64::decode(buf)?;
        let len = checked_len(buf, len)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::decode(buf)?);
        }
        Ok(v)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

/// Implements [`Wire`] for a struct by encoding its named fields in order.
/// The struct's fields must all be `pub` (the impls live outside the
/// defining crates) and themselves implement `Wire`. Exported so sibling
/// crates (`bobw-serve`) can define wire types of their own.
#[macro_export]
macro_rules! wire_struct {
    ($ty:path { $($field:ident),+ $(,)? }) => {
        impl $crate::wire::Wire for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$field.encode(out);)+
            }

            fn decode(buf: &mut &[u8]) -> Result<Self, $crate::wire::WireError> {
                Ok(Self {
                    $($field: $crate::wire::Wire::decode(buf)?,)+
                })
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------------

/// Writes one frame: `u32` little-endian payload length, then the payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME, "frame exceeds MAX_FRAME");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame payload. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection between messages); EOF in the
/// middle of a frame is an `UnexpectedEof` error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len as u64).into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encodes `msg` and writes it as one frame.
pub fn send<W: Write, T: Wire>(w: &mut W, msg: &T) -> io::Result<()> {
    write_frame(w, &encode_vec(msg))
}

/// Reads one frame and decodes it, requiring full consumption.
pub fn recv<R: Read, T: Wire>(r: &mut R) -> io::Result<Option<T>> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => Ok(Some(decode_exact(&payload)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_vec(&v);
        assert_eq!(decode_exact::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(0x1234u16);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(true);
        round_trip(false);
        round_trip(usize::MAX);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            1.5,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::NEG_INFINITY,
            std::f64::consts::PI,
        ] {
            round_trip(v);
        }
        // NaN payload bits survive too (PartialEq fails on NaN, so compare
        // the bit patterns directly).
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let bytes = encode_vec(&nan);
        assert_eq!(
            decode_exact::<f64>(&bytes).unwrap().to_bits(),
            nan.to_bits()
        );
    }

    #[test]
    fn containers_round_trip() {
        round_trip(String::from("hëllo wörld"));
        round_trip(String::new());
        round_trip(Option::<u32>::None);
        round_trip(Some(7u32));
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<String>::new());
        round_trip((3u8, String::from("x")));
        round_trip(vec![(1u8, 2.5f64), (3, f64::INFINITY)]);
    }

    #[test]
    fn truncated_values_error_cleanly() {
        let bytes = encode_vec(&0x1122_3344u32);
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_exact::<u32>(&bytes[..cut]).unwrap_err(),
                WireError::Truncated,
                "cut at {cut}"
            );
        }
        // A string whose declared length exceeds the remaining bytes.
        let mut evil = Vec::new();
        1000u64.encode(&mut evil);
        evil.extend_from_slice(b"short");
        assert!(matches!(
            decode_exact::<String>(&evil).unwrap_err(),
            WireError::Oversized(1000)
        ));
    }

    #[test]
    fn oversized_vec_length_is_rejected_before_allocating() {
        let mut evil = Vec::new();
        (u64::MAX).encode(&mut evil);
        assert!(matches!(
            decode_exact::<Vec<u64>>(&evil).unwrap_err(),
            WireError::Oversized(_)
        ));
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = encode_vec(&5u32);
        bytes.push(0xff);
        assert_eq!(
            decode_exact::<u32>(&bytes).unwrap_err(),
            WireError::TrailingBytes(1)
        );
    }

    #[test]
    fn bad_discriminants_are_an_error() {
        assert_eq!(
            decode_exact::<bool>(&[7]).unwrap_err(),
            WireError::BadDiscriminant(7)
        );
        assert_eq!(
            decode_exact::<Option<u8>>(&[9]).unwrap_err(),
            WireError::BadDiscriminant(9)
        );
    }

    #[test]
    fn frames_round_trip_over_a_pipe() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"world");
        // Clean EOF at a frame boundary.
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_header_and_body_error() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        // Cut inside the header.
        let mut r = &buf[..2];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Cut inside the body.
        let mut r = &buf[..7];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_frame_header_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let mut r = &buf[..];
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
