//! The coordinator: serves the cell grid to workers and merges results.
//!
//! ## Threading model
//!
//! One accept thread takes connections off the listener and hands each to
//! a per-connection thread. That thread performs the handshake (rejecting
//! mismatched fingerprints before any work flows), then forwards every
//! decoded [`FromWorker`] frame into a single `mpsc` channel. The batch
//! loop ([`Coordinator::run_batch`]) is therefore strictly
//! single-threaded: all scheduling state — the pending queue, leases,
//! result slots — lives on one thread, and the writers (one per worker)
//! are only touched from it.
//!
//! ## Robustness rules
//!
//! * **Leases + heartbeats** — every assigned cell has a lease refreshed
//!   by worker heartbeats; a lease not renewed within the configured
//!   timeout is revoked and the cell re-queued.
//! * **First completion wins** — after a revocation two workers may both
//!   finish the same cell; the first `Done` per index is merged, later
//!   duplicates are discarded.
//! * **Dead workers** — a disconnect re-queues all that worker's leased
//!   cells. Each cell has a bounded number of (re)assignments so a cell
//!   that kills every worker it touches fails the run instead of looping.
//! * **Ctrl-C** — the batch loop polls [`crate::interrupt::interrupted`];
//!   on interrupt it drains workers (they finish or abandon cleanly, no
//!   torn frames) and returns an error instead of partial results.
//!
//! ## Determinism
//!
//! Scheduling decides only *where* a cell runs, never what it computes:
//! results are merged into index-keyed slots, so the output vector is in
//! cell-index order — byte-identical to a local sequential run.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use bobw_core::ExperimentConfig;

use crate::endpoint::{Conn, Endpoint, Listener};
use crate::interrupt::interrupted;
use crate::proto::{
    build_fingerprint, config_fingerprint, CellOutput, CellSpec, FromWorker, Hello, HelloReply,
    ToWorker, PROTOCOL_VERSION,
};
use crate::wire::{recv, send};

/// Maximum times one cell may be (re)assigned before the run fails — a
/// cell that crashes or stalls every worker it touches must not loop
/// forever.
pub const MAX_ASSIGNMENTS: u32 = 5;

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Revoke a cell's lease when no heartbeat (or completion) arrived for
    /// this long. Workers heartbeat every ~2 s, so the default tolerates
    /// ~15 missed beats before declaring a worker dead.
    pub lease_timeout: Duration,
    /// Batch-loop tick: how often leases are checked for expiry.
    pub tick: Duration,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            lease_timeout: Duration::from_secs(30),
            tick: Duration::from_millis(100),
        }
    }
}

type WorkerId = u64;

/// What the connection threads report to the batch loop.
enum Event {
    /// Handshake succeeded; `writer` is the batch loop's handle for
    /// sending to this worker.
    Connected {
        id: WorkerId,
        name: String,
        writer: Conn,
    },
    Msg {
        id: WorkerId,
        msg: FromWorker,
    },
    Disconnected {
        id: WorkerId,
    },
}

/// Coordinator-side view of one connected worker.
struct WorkerHandle {
    writer: Conn,
    name: String,
    /// Ready for an assignment (acked the current batch, not computing).
    idle: bool,
    /// The batch this worker has acknowledged with `Ready`.
    acked_batch: Option<u64>,
}

/// A listening coordinator. Bind once, run any number of batches, then
/// [`Coordinator::shutdown`].
pub struct Coordinator {
    events: mpsc::Receiver<Event>,
    workers: HashMap<WorkerId, WorkerHandle>,
    local: Endpoint,
    stop: Arc<AtomicBool>,
    cfg: CoordinatorConfig,
    next_batch: u64,
    /// Kept so `bind` on `tcp://…:0` can report the real port.
    _accept: std::thread::JoinHandle<()>,
}

impl Coordinator {
    /// Binds the endpoint and starts accepting workers in the background.
    pub fn bind(endpoint: &Endpoint, cfg: CoordinatorConfig) -> io::Result<Coordinator> {
        let listener = endpoint.bind()?;
        let local = listener.local_endpoint()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<Event>();
        let accept = {
            let stop = Arc::clone(&stop);
            let tx = tx.clone();
            std::thread::spawn(move || accept_loop(listener, tx, stop))
        };
        Ok(Coordinator {
            events: rx,
            workers: HashMap::new(),
            local,
            stop,
            cfg,
            next_batch: 0,
            _accept: accept,
        })
    }

    /// The bound endpoint (with the real port for `tcp://…:0` binds).
    pub fn endpoint(&self) -> &Endpoint {
        &self.local
    }

    /// Number of workers currently connected and handshaken.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Serves `cells` under `config` to the connected workers (and any
    /// that connect mid-batch), returning outputs in cell-index order.
    ///
    /// Blocks until every cell completed, a cell exhausted its
    /// [`MAX_ASSIGNMENTS`], or Ctrl-C interrupted the run. Workers that
    /// die mid-cell have their cells reassigned transparently.
    pub fn run_batch(
        &mut self,
        config: &ExperimentConfig,
        cells: &[CellSpec],
    ) -> Result<Vec<CellOutput>, String> {
        let batch_id = self.next_batch;
        self.next_batch += 1;
        let config_print = config_fingerprint(config);
        let n = cells.len();

        let mut done: Vec<Option<CellOutput>> = Vec::with_capacity(n);
        done.resize_with(n, || None);
        let mut completed = 0usize;
        let mut pending: VecDeque<usize> = (0..n).collect();
        let mut assignments = vec![0u32; n];
        // cell index -> (owner, last heartbeat).
        let mut leases: HashMap<usize, (WorkerId, Instant)> = HashMap::new();

        // Announce the batch to everyone already connected; workers ack
        // with `Ready` once their testbed is up.
        let ids: Vec<WorkerId> = self.workers.keys().copied().collect();
        for id in ids {
            self.send_batch(id, batch_id, config_print, config);
        }

        while completed < n {
            if interrupted() {
                self.broadcast(&ToWorker::Drain);
                return Err(format!(
                    "interrupted: {completed}/{n} cells finished; results discarded"
                ));
            }

            // Hand pending cells to idle workers that acked this batch.
            while !pending.is_empty() {
                let Some(&id) = self
                    .workers
                    .iter()
                    .find(|(_, w)| w.idle && w.acked_batch == Some(batch_id))
                    .map(|(id, _)| id)
                else {
                    break;
                };
                let cell = pending.pop_front().expect("checked non-empty");
                let msg = ToWorker::Assign {
                    batch_id,
                    cell_index: cell as u64,
                    cell: cells[cell].clone(),
                };
                let w = self.workers.get_mut(&id).expect("found above");
                if send(&mut w.writer, &msg).is_err() {
                    // Dead on arrival; the reader thread will report the
                    // disconnect, but don't lose the cell meanwhile.
                    self.workers.remove(&id);
                    pending.push_front(cell);
                    continue;
                }
                w.idle = false;
                leases.insert(cell, (id, Instant::now()));
            }

            // One event or one tick.
            match self.events.recv_timeout(self.cfg.tick) {
                Ok(Event::Connected { id, name, writer }) => {
                    self.workers.insert(
                        id,
                        WorkerHandle {
                            writer,
                            name,
                            idle: false,
                            acked_batch: None,
                        },
                    );
                    self.send_batch(id, batch_id, config_print, config);
                }
                Ok(Event::Msg { id, msg }) => match msg {
                    FromWorker::Ready => {
                        if let Some(w) = self.workers.get_mut(&id) {
                            w.idle = true;
                            w.acked_batch = Some(batch_id);
                        }
                    }
                    FromWorker::Heartbeat {
                        batch_id: b,
                        cell_index,
                    } => {
                        if b == batch_id {
                            if let Some(lease) = leases.get_mut(&(cell_index as usize)) {
                                if lease.0 == id {
                                    lease.1 = Instant::now();
                                }
                            }
                        }
                    }
                    FromWorker::Done {
                        batch_id: b,
                        cell_index,
                        output,
                    } => {
                        if let Some(w) = self.workers.get_mut(&id) {
                            w.idle = true;
                        }
                        let cell = cell_index as usize;
                        // First completion wins; duplicates (from a worker
                        // whose lease was revoked but that finished anyway)
                        // and stale-batch strays are discarded by index.
                        if b == batch_id && cell < n && done[cell].is_none() {
                            done[cell] = Some(*output);
                            completed += 1;
                            leases.remove(&cell);
                        }
                    }
                    FromWorker::Failed {
                        batch_id: b,
                        cell_index,
                        error,
                    } => {
                        if let Some(w) = self.workers.get_mut(&id) {
                            w.idle = true;
                        }
                        let cell = cell_index as usize;
                        if b == batch_id && cell < n && done[cell].is_none() {
                            eprintln!(
                                "[coordinator] worker {} failed cell {cell}: {error}",
                                self.worker_name(id)
                            );
                            if leases.get(&cell).map(|l| l.0) == Some(id) {
                                leases.remove(&cell);
                            }
                            requeue(cell, &mut assignments, &mut pending)?;
                        }
                    }
                },
                Ok(Event::Disconnected { id }) => {
                    let name = self.worker_name(id);
                    self.workers.remove(&id);
                    let lost: Vec<usize> = leases
                        .iter()
                        .filter(|(_, (owner, _))| *owner == id)
                        .map(|(&cell, _)| cell)
                        .collect();
                    if !lost.is_empty() {
                        eprintln!(
                            "[coordinator] worker {name} disconnected; requeueing {} cell(s)",
                            lost.len()
                        );
                    }
                    for cell in lost {
                        leases.remove(&cell);
                        requeue(cell, &mut assignments, &mut pending)?;
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err("coordinator accept loop died".into());
                }
            }

            // Revoke expired leases: the owner is alive-but-silent (stuck,
            // paused, or wedged); someone else gets the cell.
            let now = Instant::now();
            let expired: Vec<usize> = leases
                .iter()
                .filter(|(_, (_, heard))| now.duration_since(*heard) > self.cfg.lease_timeout)
                .map(|(&cell, _)| cell)
                .collect();
            for cell in expired {
                let (owner, _) = leases.remove(&cell).expect("just listed");
                eprintln!(
                    "[coordinator] lease on cell {cell} expired (worker {}); reassigning",
                    self.worker_name(owner)
                );
                requeue(cell, &mut assignments, &mut pending)?;
            }
        }

        // Batch done: let workers idle until the next one.
        self.broadcast(&ToWorker::Drain);
        Ok(done
            .into_iter()
            .map(|o| o.expect("completed == n implies every slot filled"))
            .collect())
    }

    /// Sends `Shutdown` to every worker and stops the accept loop.
    pub fn shutdown(mut self) {
        self.broadcast(&ToWorker::Shutdown);
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept thread with a throwaway connection so it sees
        // the stop flag and releases the listener.
        let _ = self.local.connect();
    }

    fn worker_name(&self, id: WorkerId) -> String {
        self.workers
            .get(&id)
            .map(|w| w.name.clone())
            .unwrap_or_else(|| format!("#{id}"))
    }

    fn send_batch(
        &mut self,
        id: WorkerId,
        batch_id: u64,
        config_print: u64,
        config: &ExperimentConfig,
    ) {
        let msg = ToWorker::Batch {
            batch_id,
            config_print,
            config: Box::new(config.clone()),
        };
        if let Some(w) = self.workers.get_mut(&id) {
            w.idle = false;
            w.acked_batch = None;
            if send(&mut w.writer, &msg).is_err() {
                self.workers.remove(&id);
            }
        }
    }

    fn broadcast(&mut self, msg: &ToWorker) {
        let mut dead = Vec::new();
        for (&id, w) in self.workers.iter_mut() {
            if send(&mut w.writer, msg).is_err() {
                dead.push(id);
            }
        }
        for id in dead {
            self.workers.remove(&id);
        }
    }
}

/// Re-queues a cell after a failure/expiry, failing the run once the cell
/// burned through its assignment budget.
fn requeue(
    cell: usize,
    assignments: &mut [u32],
    pending: &mut VecDeque<usize>,
) -> Result<(), String> {
    assignments[cell] += 1;
    if assignments[cell] >= MAX_ASSIGNMENTS {
        return Err(format!(
            "cell {cell} failed {MAX_ASSIGNMENTS} assignments; aborting the run"
        ));
    }
    pending.push_front(cell);
    Ok(())
}

/// Accepts connections until the stop flag flips; each connection gets its
/// own handshake/reader thread.
fn accept_loop(listener: Listener, tx: mpsc::Sender<Event>, stop: Arc<AtomicBool>) {
    let mut next_id: WorkerId = 0;
    loop {
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let id = next_id;
        next_id += 1;
        let tx = tx.clone();
        std::thread::spawn(move || serve_worker_connection(conn, id, tx));
    }
}

/// Handshakes one connection, then pumps its frames into the event channel.
fn serve_worker_connection(conn: Conn, id: WorkerId, tx: mpsc::Sender<Event>) {
    conn.set_nodelay();
    let Ok(mut writer) = conn.try_clone() else {
        return;
    };
    let mut reader = conn;

    let hello: Hello = match recv(&mut reader) {
        Ok(Some(h)) => h,
        _ => return, // never handshook; nothing to report
    };
    let expected = build_fingerprint();
    if hello.protocol != PROTOCOL_VERSION || hello.fingerprint != expected {
        let reason = if hello.protocol != PROTOCOL_VERSION {
            format!(
                "protocol version mismatch (coordinator {PROTOCOL_VERSION}, worker {})",
                hello.protocol
            )
        } else {
            format!(
                "build fingerprint mismatch (coordinator {expected:#x}, worker {:#x}): \
                 the worker binary would compute different worlds",
                hello.fingerprint
            )
        };
        eprintln!(
            "[coordinator] rejecting worker {}: {reason}",
            hello.worker_name
        );
        let _ = send(&mut writer, &HelloReply::Rejected { reason });
        return;
    }
    if send(&mut writer, &HelloReply::Welcome).is_err() {
        return;
    }
    if tx
        .send(Event::Connected {
            id,
            name: hello.worker_name,
            writer,
        })
        .is_err()
    {
        return;
    }
    loop {
        match recv::<_, FromWorker>(&mut reader) {
            Ok(Some(msg)) => {
                if tx.send(Event::Msg { id, msg }).is_err() {
                    return;
                }
            }
            Ok(None) | Err(_) => {
                let _ = tx.send(Event::Disconnected { id });
                return;
            }
        }
    }
}
