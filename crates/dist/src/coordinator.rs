//! The coordinator: serves the cell grid to workers and merges results.
//!
//! ## Threading model
//!
//! One accept thread takes connections off the listener and hands each to
//! a per-connection thread. That thread performs the v4 handshake — the
//! server sends a [`Challenge`] nonce, the peer answers with a
//! [`Greeting`], and mismatched fingerprints or bad HMAC credentials are
//! rejected before any work flows — then forwards every decoded
//! [`FromWorker`] frame into a single `mpsc` channel. The batch loop
//! ([`Coordinator::run_batch`]) is therefore strictly single-threaded:
//! all scheduling state — the pending queue, leases, result slots — lives
//! on one thread, and the writers (one per worker) are only touched from
//! it.
//!
//! The handshake/pump machinery is factored into [`WorkerPort`] so a
//! host that owns its own listener (the `bobw serve` daemon, which
//! multiplexes workers *and* job-service clients on one socket) can
//! splice accepted worker connections into a [`Coordinator::detached`]
//! instance.
//!
//! ## Robustness rules
//!
//! * **Leases + heartbeats** — every assigned cell has a lease refreshed
//!   by worker heartbeats; a lease not renewed within the configured
//!   timeout is revoked and the cell re-queued.
//! * **First completion wins** — after a revocation two workers may both
//!   finish the same cell; the first `Done` per index is merged, later
//!   duplicates are discarded.
//! * **Dead workers** — a disconnect re-queues all that worker's leased
//!   cells. Each cell has a bounded number of (re)assignments so a cell
//!   that kills every worker it touches fails the run instead of looping.
//! * **Ctrl-C** — the batch loop polls [`crate::interrupt::interrupted`];
//!   on interrupt it drains workers (they finish or abandon cleanly, no
//!   torn frames) and returns an error instead of partial results.
//!
//! ## Determinism
//!
//! Scheduling decides only *where* a cell runs, never what it computes:
//! results are merged into index-keyed slots, so the output vector is in
//! cell-index order — byte-identical to a local sequential run. A worker
//! now multiplexes up to `Hello::capacity` concurrent cells over its one
//! connection; assignment is least-loaded-first, which again only moves
//! placement, never content.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use bobw_core::ExperimentConfig;

use crate::auth::{fresh_nonce, AuthSecret};
use crate::endpoint::{Conn, Endpoint, Listener};
use crate::interrupt::interrupted;
use crate::proto::{
    build_fingerprint, config_fingerprint, CellOutput, CellSpec, Challenge, ClientHello,
    FromWorker, Greeting, Hello, HelloReply, ToWorker, PROTOCOL_VERSION,
};
use crate::wire::{recv, send};

/// Maximum times one cell may be (re)assigned before the run fails — a
/// cell that crashes or stalls every worker it touches must not loop
/// forever.
pub const MAX_ASSIGNMENTS: u32 = 5;

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Revoke a cell's lease when no heartbeat (or completion) arrived for
    /// this long. Workers heartbeat every ~2 s, so the default tolerates
    /// ~15 missed beats before declaring a worker dead.
    pub lease_timeout: Duration,
    /// Batch-loop tick: how often leases are checked for expiry.
    pub tick: Duration,
    /// Shared handshake secret; when set, workers (and clients, on the
    /// serve daemon) must present a valid HMAC tag or are rejected.
    pub secret: Option<AuthSecret>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            lease_timeout: Duration::from_secs(30),
            tick: Duration::from_millis(100),
            secret: AuthSecret::from_env(),
        }
    }
}

type WorkerId = u64;

/// What the connection threads report to the batch loop.
enum Event {
    /// Handshake succeeded; `writer` is the batch loop's handle for
    /// sending to this worker.
    Connected {
        id: WorkerId,
        name: String,
        capacity: u32,
        writer: Conn,
    },
    Msg {
        id: WorkerId,
        msg: FromWorker,
    },
    Disconnected {
        id: WorkerId,
    },
}

/// Coordinator-side view of one connected worker.
struct WorkerHandle {
    writer: Conn,
    name: String,
    /// Concurrent cells this worker accepts (its `Hello::capacity`).
    capacity: u32,
    /// Cells currently assigned and not yet answered.
    inflight: u32,
    /// The batch this worker has acknowledged with `Ready`.
    acked_batch: Option<u64>,
    /// Batches this worker served from its warm testbed cache.
    cache_hits: u64,
    /// Cells this worker completed (lifetime, across batches).
    cells_done: u64,
    /// Last frame of any kind from this worker (liveness for metrics).
    last_heard: Instant,
}

/// A point-in-time view of one connected worker, for the metrics plane.
#[derive(Debug, Clone, serde::Serialize)]
pub struct WorkerStat {
    pub name: String,
    pub capacity: u32,
    pub inflight: u32,
    pub cells_done: u64,
    pub cache_hits: u64,
    /// Seconds since the last frame from this worker.
    pub last_heard_s: f64,
}

/// The worker-facing half of a coordinator: performs the challenge
/// handshake on accepted connections and pumps vetted workers' frames
/// into the batch loop. Cloneable so a daemon can hand it to any number
/// of connection threads.
#[derive(Clone)]
pub struct WorkerPort {
    tx: mpsc::Sender<Event>,
    next_id: Arc<AtomicU64>,
    secret: Option<AuthSecret>,
}

impl WorkerPort {
    /// Sends the [`Challenge`] that must precede any greeting. Returns
    /// the nonce the peer's credential has to bind.
    pub fn send_challenge(&self, writer: &mut Conn) -> io::Result<Vec<u8>> {
        let nonce = fresh_nonce();
        send(
            writer,
            &Challenge {
                nonce: nonce.clone(),
                auth_required: self.secret.is_some(),
            },
        )?;
        Ok(nonce)
    }

    /// Serves one freshly accepted connection end-to-end: challenge,
    /// greeting, vetting, then pumping worker frames until disconnect.
    /// Blocking — callers give each connection its own thread. Client
    /// greetings are rejected (a plain coordinator runs no job service).
    pub fn serve_connection(&self, conn: Conn) {
        conn.set_nodelay();
        let Ok(mut writer) = conn.try_clone() else {
            return;
        };
        let mut reader = conn;
        let Ok(nonce) = self.send_challenge(&mut writer) else {
            return;
        };
        match recv::<_, Greeting>(&mut reader) {
            Ok(Some(Greeting::Worker(hello))) => self.adopt_worker(reader, writer, hello, &nonce),
            Ok(Some(Greeting::Client(hello))) => {
                eprintln!(
                    "[coordinator] rejecting client {}: not a job service",
                    hello.client_name
                );
                let _ = send(
                    &mut writer,
                    &HelloReply::Rejected {
                        reason: "this endpoint is a batch coordinator, not a job service \
                                 (start one with `bobw serve`)"
                            .into(),
                    },
                );
            }
            // Garbage or no greeting at all: drop the connection.
            _ => {}
        }
    }

    /// Vets a worker greeting and, if welcome, splices the connection
    /// into the batch loop, pumping its frames until disconnect
    /// (blocking). The `bobw serve` daemon calls this after classifying
    /// the greeting itself.
    pub fn adopt_worker(&self, mut reader: Conn, mut writer: Conn, hello: Hello, nonce: &[u8]) {
        if let Err(reason) = vet_worker(&hello, nonce, self.secret.as_ref()) {
            eprintln!(
                "[coordinator] rejecting worker {}: {reason}",
                hello.worker_name
            );
            let _ = send(&mut writer, &HelloReply::Rejected { reason });
            return;
        }
        if send(&mut writer, &HelloReply::Welcome).is_err() {
            return;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if self
            .tx
            .send(Event::Connected {
                id,
                name: hello.worker_name,
                capacity: hello.capacity.max(1),
                writer,
            })
            .is_err()
        {
            return;
        }
        loop {
            match recv::<_, FromWorker>(&mut reader) {
                Ok(Some(msg)) => {
                    if self.tx.send(Event::Msg { id, msg }).is_err() {
                        return;
                    }
                }
                Ok(None) | Err(_) => {
                    let _ = self.tx.send(Event::Disconnected { id });
                    return;
                }
            }
        }
    }
}

/// Why a worker greeting is unacceptable, or `Ok` to welcome it.
fn vet_worker(hello: &Hello, nonce: &[u8], secret: Option<&AuthSecret>) -> Result<(), String> {
    if hello.protocol != PROTOCOL_VERSION {
        return Err(format!(
            "protocol version mismatch (coordinator {PROTOCOL_VERSION}, worker {})",
            hello.protocol
        ));
    }
    let expected = build_fingerprint();
    if hello.fingerprint != expected {
        return Err(format!(
            "build fingerprint mismatch (coordinator {expected:#x}, worker {:#x}): \
             the worker binary would compute different worlds",
            hello.fingerprint
        ));
    }
    if let Some(secret) = secret {
        if !secret.verify_worker(
            &hello.auth,
            nonce,
            hello.protocol,
            hello.fingerprint,
            &hello.worker_name,
        ) {
            return Err("authentication failed: bad or missing worker credential".into());
        }
    }
    Ok(())
}

/// Why a client greeting is unacceptable, or `Ok` to welcome it. Shared
/// with the serve daemon, which accepts clients on the same listener.
pub fn vet_client(
    hello: &ClientHello,
    nonce: &[u8],
    secret: Option<&AuthSecret>,
) -> Result<(), String> {
    if hello.protocol != PROTOCOL_VERSION {
        return Err(format!(
            "protocol version mismatch (server {PROTOCOL_VERSION}, client {})",
            hello.protocol
        ));
    }
    if let Some(secret) = secret {
        if !secret.verify_client(&hello.auth, nonce, hello.protocol, &hello.client_name) {
            return Err("authentication failed: bad or missing client credential".into());
        }
    }
    Ok(())
}

/// A coordinator. [`Coordinator::bind`] listens itself; a
/// [`Coordinator::detached`] instance is fed accepted connections by an
/// external listener through its [`WorkerPort`]. Run any number of
/// batches, then [`Coordinator::shutdown`].
pub struct Coordinator {
    events: mpsc::Receiver<Event>,
    port: WorkerPort,
    workers: HashMap<WorkerId, WorkerHandle>,
    /// Bound endpoint; `None` for a detached coordinator.
    local: Option<Endpoint>,
    stop: Arc<AtomicBool>,
    cfg: CoordinatorConfig,
    next_batch: u64,
    /// Optional live stats mirror for a metrics plane: refreshed from the
    /// batch loop (and [`Coordinator::pump_events`]) so other threads can
    /// read worker liveness without touching scheduler state.
    stats_sink: Option<Arc<Mutex<Vec<WorkerStat>>>>,
    /// Kept so `bind` on `tcp://…:0` can report the real port.
    _accept: Option<std::thread::JoinHandle<()>>,
}

impl Coordinator {
    /// Binds the endpoint and starts accepting workers in the background.
    pub fn bind(endpoint: &Endpoint, cfg: CoordinatorConfig) -> io::Result<Coordinator> {
        let listener = endpoint.bind()?;
        let local = listener.local_endpoint()?;
        let (mut coordinator, port) = Self::detached(cfg);
        let stop = Arc::clone(&coordinator.stop);
        coordinator.local = Some(local);
        coordinator._accept = Some(std::thread::spawn(move || {
            accept_loop(listener, port, stop)
        }));
        Ok(coordinator)
    }

    /// A coordinator with no listener of its own: the caller owns the
    /// socket and feeds accepted worker connections through the returned
    /// [`WorkerPort`] (see `bobw serve`).
    pub fn detached(cfg: CoordinatorConfig) -> (Coordinator, WorkerPort) {
        let (tx, rx) = mpsc::channel::<Event>();
        let port = WorkerPort {
            tx,
            next_id: Arc::new(AtomicU64::new(0)),
            secret: cfg.secret.clone(),
        };
        let coordinator = Coordinator {
            events: rx,
            port: port.clone(),
            workers: HashMap::new(),
            local: None,
            stop: Arc::new(AtomicBool::new(false)),
            cfg,
            next_batch: 0,
            stats_sink: None,
            _accept: None,
        };
        (coordinator, port)
    }

    /// The bound endpoint (with the real port for `tcp://…:0` binds);
    /// `None` for a detached coordinator.
    pub fn endpoint(&self) -> Option<&Endpoint> {
        self.local.as_ref()
    }

    /// This coordinator's worker port (handshake + frame pump).
    pub fn port(&self) -> WorkerPort {
        self.port.clone()
    }

    /// Number of workers currently connected and handshaken.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Installs a live mirror of [`Coordinator::worker_stats`] that the
    /// batch loop refreshes, for a metrics plane on another thread.
    pub fn set_stats_sink(&mut self, sink: Arc<Mutex<Vec<WorkerStat>>>) {
        self.stats_sink = Some(sink);
        self.publish_stats();
    }

    /// Point-in-time stats for every connected worker, by name.
    pub fn worker_stats(&self) -> Vec<WorkerStat> {
        let mut stats: Vec<WorkerStat> = self
            .workers
            .values()
            .map(|w| WorkerStat {
                name: w.name.clone(),
                capacity: w.capacity,
                inflight: w.inflight,
                cells_done: w.cells_done,
                cache_hits: w.cache_hits,
                last_heard_s: w.last_heard.elapsed().as_secs_f64(),
            })
            .collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        stats
    }

    fn publish_stats(&self) {
        if let Some(sink) = &self.stats_sink {
            *sink.lock().unwrap() = self.worker_stats();
        }
    }

    /// Serves `cells` under `config` to the connected workers (and any
    /// that connect mid-batch), returning outputs in cell-index order.
    ///
    /// Blocks until every cell completed, a cell exhausted its
    /// [`MAX_ASSIGNMENTS`], or Ctrl-C interrupted the run. Workers that
    /// die mid-cell have their cells reassigned transparently.
    pub fn run_batch(
        &mut self,
        config: &ExperimentConfig,
        cells: &[CellSpec],
    ) -> Result<Vec<CellOutput>, String> {
        self.run_batch_with(config, cells, |_, _| {})
    }

    /// [`Coordinator::run_batch`], additionally invoking `on_cell` with
    /// `(cell_index, output)` the moment each cell's first completion
    /// merges — the streaming hook `bobw watch` rides on. Callbacks
    /// arrive in completion order, not index order; the returned vector
    /// is index-ordered as always.
    pub fn run_batch_with(
        &mut self,
        config: &ExperimentConfig,
        cells: &[CellSpec],
        mut on_cell: impl FnMut(usize, &CellOutput),
    ) -> Result<Vec<CellOutput>, String> {
        let batch_id = self.next_batch;
        self.next_batch += 1;
        let config_print = config_fingerprint(config);
        let n = cells.len();

        let mut done: Vec<Option<CellOutput>> = Vec::with_capacity(n);
        done.resize_with(n, || None);
        let mut completed = 0usize;
        let mut pending: VecDeque<usize> = (0..n).collect();
        let mut assignments = vec![0u32; n];
        // cell index -> (owner, last heartbeat).
        let mut leases: HashMap<usize, (WorkerId, Instant)> = HashMap::new();

        // Announce the batch to everyone already connected; workers ack
        // with `Ready` once their testbed is up.
        let ids: Vec<WorkerId> = self.workers.keys().copied().collect();
        for id in ids {
            self.send_batch(id, batch_id, config_print, config);
        }

        while completed < n {
            if interrupted() {
                self.broadcast(&ToWorker::Drain);
                return Err(format!(
                    "interrupted: {completed}/{n} cells finished; results discarded"
                ));
            }

            // Hand pending cells to the least-loaded workers that acked
            // this batch and still have capacity headroom.
            while !pending.is_empty() {
                let Some(&id) = self
                    .workers
                    .iter()
                    .filter(|(_, w)| w.acked_batch == Some(batch_id) && w.inflight < w.capacity)
                    .min_by_key(|(id, w)| (w.inflight, **id))
                    .map(|(id, _)| id)
                else {
                    break;
                };
                let cell = pending.pop_front().expect("checked non-empty");
                let msg = ToWorker::Assign {
                    batch_id,
                    cell_index: cell as u64,
                    cell: cells[cell].clone(),
                };
                let w = self.workers.get_mut(&id).expect("found above");
                if send(&mut w.writer, &msg).is_err() {
                    // Dead on arrival; the reader thread will report the
                    // disconnect, but don't lose the cell meanwhile.
                    self.workers.remove(&id);
                    pending.push_front(cell);
                    continue;
                }
                w.inflight += 1;
                leases.insert(cell, (id, Instant::now()));
            }

            // One event or one tick.
            match self.events.recv_timeout(self.cfg.tick) {
                Ok(Event::Connected {
                    id,
                    name,
                    capacity,
                    writer,
                }) => {
                    self.insert_worker(id, name, capacity, writer);
                    self.send_batch(id, batch_id, config_print, config);
                }
                Ok(Event::Msg { id, msg }) => {
                    if let Some(w) = self.workers.get_mut(&id) {
                        w.last_heard = Instant::now();
                    }
                    match msg {
                        FromWorker::Ready { cache_hit } => {
                            if let Some(w) = self.workers.get_mut(&id) {
                                w.acked_batch = Some(batch_id);
                                w.cache_hits += cache_hit as u64;
                            }
                        }
                        FromWorker::Heartbeat {
                            batch_id: b,
                            cell_index,
                        } => {
                            if b == batch_id {
                                if let Some(lease) = leases.get_mut(&(cell_index as usize)) {
                                    if lease.0 == id {
                                        lease.1 = Instant::now();
                                    }
                                }
                            }
                        }
                        FromWorker::Done {
                            batch_id: b,
                            cell_index,
                            output,
                        } => {
                            if let Some(w) = self.workers.get_mut(&id) {
                                w.inflight = w.inflight.saturating_sub(1);
                                w.cells_done += 1;
                            }
                            let cell = cell_index as usize;
                            // First completion wins; duplicates (from a worker
                            // whose lease was revoked but that finished anyway)
                            // and stale-batch strays are discarded by index.
                            if b == batch_id && cell < n && done[cell].is_none() {
                                done[cell] = Some(*output);
                                completed += 1;
                                leases.remove(&cell);
                                on_cell(cell, done[cell].as_ref().expect("just stored"));
                            }
                        }
                        FromWorker::Failed {
                            batch_id: b,
                            cell_index,
                            error,
                        } => {
                            if let Some(w) = self.workers.get_mut(&id) {
                                w.inflight = w.inflight.saturating_sub(1);
                            }
                            let cell = cell_index as usize;
                            if b == batch_id && cell < n && done[cell].is_none() {
                                eprintln!(
                                    "[coordinator] worker {} failed cell {cell}: {error}",
                                    self.worker_name(id)
                                );
                                if leases.get(&cell).map(|l| l.0) == Some(id) {
                                    leases.remove(&cell);
                                }
                                requeue(cell, &mut assignments, &mut pending)?;
                            }
                        }
                    }
                }
                Ok(Event::Disconnected { id }) => {
                    let name = self.worker_name(id);
                    self.workers.remove(&id);
                    let lost: Vec<usize> = leases
                        .iter()
                        .filter(|(_, (owner, _))| *owner == id)
                        .map(|(&cell, _)| cell)
                        .collect();
                    if !lost.is_empty() {
                        eprintln!(
                            "[coordinator] worker {name} disconnected; requeueing {} cell(s)",
                            lost.len()
                        );
                    }
                    for cell in lost {
                        leases.remove(&cell);
                        requeue(cell, &mut assignments, &mut pending)?;
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err("coordinator event channel died".into());
                }
            }

            // Revoke expired leases: the owner is alive-but-silent (stuck,
            // paused, or wedged); someone else gets the cell. The owner's
            // inflight slot stays occupied until it answers or disconnects,
            // so a wedged worker cannot hoard fresh assignments.
            let now = Instant::now();
            let expired: Vec<usize> = leases
                .iter()
                .filter(|(_, (_, heard))| now.duration_since(*heard) > self.cfg.lease_timeout)
                .map(|(&cell, _)| cell)
                .collect();
            for cell in expired {
                let (owner, _) = leases.remove(&cell).expect("just listed");
                eprintln!(
                    "[coordinator] lease on cell {cell} expired (worker {}); reassigning",
                    self.worker_name(owner)
                );
                requeue(cell, &mut assignments, &mut pending)?;
            }

            self.publish_stats();
        }

        // Batch done: let workers idle until the next one.
        self.broadcast(&ToWorker::Drain);
        self.publish_stats();
        Ok(done
            .into_iter()
            .map(|o| o.expect("completed == n implies every slot filled"))
            .collect())
    }

    /// Processes connection lifecycle events while no batch is running,
    /// waiting up to `wait` for the first one. A long-lived daemon calls
    /// this between jobs so idle-time connects/disconnects (and straggler
    /// results from revoked leases) keep the worker table and metrics
    /// fresh instead of queueing until the next batch.
    pub fn pump_events(&mut self, wait: Duration) {
        let mut budget = Some(wait);
        loop {
            let ev = match budget.take() {
                Some(w) => match self.events.recv_timeout(w) {
                    Ok(ev) => ev,
                    Err(_) => break,
                },
                None => match self.events.try_recv() {
                    Ok(ev) => ev,
                    Err(_) => break,
                },
            };
            match ev {
                Event::Connected {
                    id,
                    name,
                    capacity,
                    writer,
                } => self.insert_worker(id, name, capacity, writer),
                Event::Msg { id, msg } => {
                    if let Some(w) = self.workers.get_mut(&id) {
                        w.last_heard = Instant::now();
                        match msg {
                            // Stragglers from a finished batch: free the slot.
                            FromWorker::Done { .. } => {
                                w.inflight = w.inflight.saturating_sub(1);
                                w.cells_done += 1;
                            }
                            FromWorker::Failed { .. } => {
                                w.inflight = w.inflight.saturating_sub(1);
                            }
                            FromWorker::Ready { .. } | FromWorker::Heartbeat { .. } => {}
                        }
                    }
                }
                Event::Disconnected { id } => {
                    self.workers.remove(&id);
                }
            }
        }
        self.publish_stats();
    }

    /// Sends `Shutdown` to every worker and stops the accept loop.
    pub fn shutdown(mut self) {
        self.broadcast(&ToWorker::Shutdown);
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept thread with a throwaway connection so it sees
        // the stop flag and releases the listener.
        if let Some(local) = &self.local {
            let _ = local.connect();
        }
    }

    fn insert_worker(&mut self, id: WorkerId, name: String, capacity: u32, writer: Conn) {
        self.workers.insert(
            id,
            WorkerHandle {
                writer,
                name,
                capacity,
                inflight: 0,
                acked_batch: None,
                cache_hits: 0,
                cells_done: 0,
                last_heard: Instant::now(),
            },
        );
    }

    fn worker_name(&self, id: WorkerId) -> String {
        self.workers
            .get(&id)
            .map(|w| w.name.clone())
            .unwrap_or_else(|| format!("#{id}"))
    }

    fn send_batch(
        &mut self,
        id: WorkerId,
        batch_id: u64,
        config_print: u64,
        config: &ExperimentConfig,
    ) {
        let msg = ToWorker::Batch {
            batch_id,
            config_print,
            config: Box::new(config.clone()),
        };
        if let Some(w) = self.workers.get_mut(&id) {
            w.acked_batch = None;
            if send(&mut w.writer, &msg).is_err() {
                self.workers.remove(&id);
            }
        }
    }

    fn broadcast(&mut self, msg: &ToWorker) {
        let mut dead = Vec::new();
        for (&id, w) in self.workers.iter_mut() {
            if send(&mut w.writer, msg).is_err() {
                dead.push(id);
            }
        }
        for id in dead {
            self.workers.remove(&id);
        }
    }
}

/// Re-queues a cell after a failure/expiry, failing the run once the cell
/// burned through its assignment budget.
fn requeue(
    cell: usize,
    assignments: &mut [u32],
    pending: &mut VecDeque<usize>,
) -> Result<(), String> {
    assignments[cell] += 1;
    if assignments[cell] >= MAX_ASSIGNMENTS {
        return Err(format!(
            "cell {cell} failed {MAX_ASSIGNMENTS} assignments; aborting the run"
        ));
    }
    pending.push_front(cell);
    Ok(())
}

/// Accepts connections until the stop flag flips; each connection gets its
/// own handshake/reader thread.
fn accept_loop(listener: Listener, port: WorkerPort, stop: Arc<AtomicBool>) {
    loop {
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let port = port.clone();
        std::thread::spawn(move || port.serve_connection(conn));
    }
}
