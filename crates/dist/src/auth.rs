//! Shared-secret worker/client authentication for the v4 handshake.
//!
//! The v3 socket was bare: anything that could reach the coordinator's
//! port and knew the build fingerprint could pull cell leases or inject
//! results. Fine on loopback, not beyond. v4 makes the server send a
//! random [`Challenge`](crate::proto::Challenge) nonce first; the peer
//! answers with an HMAC-SHA256 tag over the nonce, the protocol version,
//! its build fingerprint, and its name, keyed by a shared secret
//! (`BOBW_SECRET` or `--secret-file`). Binding the *fingerprint* into
//! the tag means a credential minted for one build cannot be replayed to
//! admit a semantically different binary.
//!
//! The primitives are hand-rolled from the FIPS 180-4 / RFC 2104 specs
//! because the workspace vendors no crypto crate — they are small, and
//! the test vectors below (RFC 4231 / NIST) pin them to the standards.
//! When no secret is configured on the server, authentication is not
//! required and empty tags are accepted — existing loopback workflows
//! keep working unchanged.

use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4)
// ---------------------------------------------------------------------------

const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = H0;

    // Padded message: data ‖ 0x80 ‖ zeros ‖ 64-bit big-endian bit length,
    // processed in 64-byte blocks without materializing the whole padded
    // message (the tail is at most two blocks).
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut blocks = data.chunks_exact(64);
    for block in &mut blocks {
        compress(&mut h, block.try_into().expect("64-byte chunk"));
    }
    let rem = blocks.remainder();
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_blocks = if rem.len() + 9 <= 64 { 1 } else { 2 };
    let len_at = tail_blocks * 64 - 8;
    tail[len_at..len_at + 8].copy_from_slice(&bit_len.to_be_bytes());
    for i in 0..tail_blocks {
        compress(
            &mut h,
            tail[i * 64..(i + 1) * 64]
                .try_into()
                .expect("64-byte block"),
        );
    }

    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

fn compress(h: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = hh
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        hh = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
    h[5] = h[5].wrapping_add(f);
    h[6] = h[6].wrapping_add(g);
    h[7] = h[7].wrapping_add(hh);
}

// ---------------------------------------------------------------------------
// HMAC-SHA256 (RFC 2104)
// ---------------------------------------------------------------------------

/// HMAC-SHA256 of `msg` under `key`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(64 + msg.len());
    inner.extend(k.iter().map(|b| b ^ 0x36));
    inner.extend_from_slice(msg);
    let inner_hash = sha256(&inner);
    let mut outer = Vec::with_capacity(64 + 32);
    outer.extend(k.iter().map(|b| b ^ 0x5c));
    outer.extend_from_slice(&inner_hash);
    sha256(&outer)
}

/// Constant-time byte-slice comparison (no early exit on the first
/// mismatching byte, so a remote peer can't binary-search the tag).
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

// ---------------------------------------------------------------------------
// Shared secret + handshake tags
// ---------------------------------------------------------------------------

/// Environment variable both sides read the shared secret from when no
/// `--secret-file` was given.
pub const SECRET_ENV: &str = "BOBW_SECRET";

/// A shared handshake secret. `Debug` is redacted so a secret can never
/// leak through coordinator logs.
#[derive(Clone, PartialEq, Eq)]
pub struct AuthSecret(Vec<u8>);

impl fmt::Debug for AuthSecret {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AuthSecret(<{} bytes>)", self.0.len())
    }
}

impl AuthSecret {
    pub fn new(bytes: impl Into<Vec<u8>>) -> AuthSecret {
        AuthSecret(bytes.into())
    }

    /// Reads [`SECRET_ENV`]; `None` when unset or empty (auth disabled).
    pub fn from_env() -> Option<AuthSecret> {
        match std::env::var(SECRET_ENV) {
            Ok(s) if !s.is_empty() => Some(AuthSecret(s.into_bytes())),
            _ => None,
        }
    }

    /// Loads the secret from a file, trimming trailing whitespace (the
    /// usual `echo secret > file` newline).
    pub fn from_file(path: impl AsRef<Path>) -> io::Result<AuthSecret> {
        let raw = std::fs::read(path.as_ref())?;
        let end = raw
            .iter()
            .rposition(|b| !b.is_ascii_whitespace())
            .map_or(0, |i| i + 1);
        if end == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("secret file {} is empty", path.as_ref().display()),
            ));
        }
        Ok(AuthSecret(raw[..end].to_vec()))
    }

    /// Tag a *worker* presents: binds the challenge nonce, the protocol
    /// version, the worker's build fingerprint, and its name.
    pub fn worker_tag(&self, nonce: &[u8], protocol: u32, fingerprint: u64, name: &str) -> Vec<u8> {
        let mut msg = Vec::with_capacity(nonce.len() + 32 + name.len());
        msg.extend_from_slice(b"bobw-worker\0");
        msg.extend_from_slice(nonce);
        msg.extend_from_slice(&protocol.to_le_bytes());
        msg.extend_from_slice(&fingerprint.to_le_bytes());
        msg.extend_from_slice(name.as_bytes());
        hmac_sha256(&self.0, &msg).to_vec()
    }

    /// Tag a *client* (submit/watch/status) presents.
    pub fn client_tag(&self, nonce: &[u8], protocol: u32, name: &str) -> Vec<u8> {
        let mut msg = Vec::with_capacity(nonce.len() + 32 + name.len());
        msg.extend_from_slice(b"bobw-client\0");
        msg.extend_from_slice(nonce);
        msg.extend_from_slice(&protocol.to_le_bytes());
        msg.extend_from_slice(name.as_bytes());
        hmac_sha256(&self.0, &msg).to_vec()
    }

    pub fn verify_worker(
        &self,
        tag: &[u8],
        nonce: &[u8],
        protocol: u32,
        fingerprint: u64,
        name: &str,
    ) -> bool {
        constant_time_eq(tag, &self.worker_tag(nonce, protocol, fingerprint, name))
    }

    pub fn verify_client(&self, tag: &[u8], nonce: &[u8], protocol: u32, name: &str) -> bool {
        constant_time_eq(tag, &self.client_tag(nonce, protocol, name))
    }
}

/// A fresh 16-byte challenge nonce. Not cryptographically random — the
/// container vendors no entropy source — but unique per handshake
/// (pid × wall clock × monotonic counter through SHA-256), which is what
/// the challenge needs: preventing tag replay across connections. This is
/// runtime infrastructure; it never touches a simulation RNG stream.
pub fn fresh_nonce() -> Vec<u8> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut seed = Vec::with_capacity(24);
    seed.extend_from_slice(&u64::from(std::process::id()).to_le_bytes());
    seed.extend_from_slice(&now.to_le_bytes());
    seed.extend_from_slice(&count.to_le_bytes());
    sha256(&seed)[..16].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// NIST FIPS 180-4 example vectors.
    #[test]
    fn sha256_matches_nist_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One million 'a's: exercises many blocks and the length tail.
        assert_eq!(
            hex(&sha256(&vec![b'a'; 1_000_000])),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
        // 55 and 56 input bytes straddle the one-vs-two-block padding
        // boundary ("a" × 55/56, digests from the NIST byte-oriented
        // test suite).
        assert_eq!(
            hex(&sha256(&[b'a'; 55])),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"
        );
        assert_eq!(
            hex(&sha256(&[b'a'; 56])),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
        );
    }

    /// RFC 4231 test cases 1, 2, and 6 (the long-key case exercises the
    /// key-hashing branch).
    #[test]
    fn hmac_sha256_matches_rfc4231_vectors() {
        let tag = hmac_sha256(&[0x0b; 20], b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        let tag = hmac_sha256(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn tags_bind_every_handshake_field() {
        let secret = AuthSecret::new("s3cret");
        let nonce = fresh_nonce();
        let tag = secret.worker_tag(&nonce, 4, 0xabcd, "w1");
        assert!(secret.verify_worker(&tag, &nonce, 4, 0xabcd, "w1"));
        // Any field change invalidates the tag.
        assert!(!secret.verify_worker(&tag, &nonce, 5, 0xabcd, "w1"));
        assert!(!secret.verify_worker(&tag, &nonce, 4, 0xabce, "w1"));
        assert!(!secret.verify_worker(&tag, &nonce, 4, 0xabcd, "w2"));
        assert!(!secret.verify_worker(&tag, &fresh_nonce(), 4, 0xabcd, "w1"));
        // A worker tag is not a client tag and vice versa.
        assert!(!secret.verify_client(&tag, &nonce, 4, "w1"));
        // A different secret never verifies.
        assert!(!AuthSecret::new("other").verify_worker(&tag, &nonce, 4, 0xabcd, "w1"));
        // Empty tags (unauthenticated peers) never verify against a secret.
        assert!(!secret.verify_worker(&[], &nonce, 4, 0xabcd, "w1"));
    }

    #[test]
    fn nonces_are_unique_per_handshake() {
        let a = fresh_nonce();
        let b = fresh_nonce();
        assert_eq!(a.len(), 16);
        assert_ne!(a, b);
    }

    #[test]
    fn secret_file_trims_trailing_newline() {
        let dir = std::env::temp_dir().join(format!("bobw-auth-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("secret");
        std::fs::write(&path, "hunter2\n").unwrap();
        assert_eq!(
            AuthSecret::from_file(&path).unwrap(),
            AuthSecret::new("hunter2")
        );
        std::fs::write(&path, "\n").unwrap();
        assert!(AuthSecret::from_file(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
