//! `bobw-worker` — a standalone worker process for distributed runs.
//!
//! ```text
//! bobw-worker --connect tcp://coordinator:9999 [--threads N] [--name S]
//! ```
//!
//! Equivalent to `bobw worker …`; this thin binary exists so worker hosts
//! need only the one executable.

use std::process::ExitCode;
use std::time::Duration;

use bobw_dist::{run_worker, AuthSecret, Endpoint, WorkerConfig};

const USAGE: &str = "\
bobw-worker — distributed cell-execution worker

USAGE:
  bobw-worker --connect tcp://HOST:PORT|unix://PATH
              [--threads N] [--name NAME] [--connect-timeout SECS]
              [--secret-file PATH]

The shared handshake secret is read from BOBW_SECRET unless
--secret-file is given; without either, the worker can only join
coordinators that don't require authentication.
";

fn parse(args: &[String]) -> Result<WorkerConfig, String> {
    let mut connect: Option<Endpoint> = None;
    let mut threads = 1usize;
    let mut name: Option<String> = None;
    let mut timeout = Duration::from_secs(10);
    let mut secret_file: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("--{flag} expects a value"))
        };
        match a.as_str() {
            "--connect" => connect = Some(Endpoint::parse(&value("connect")?)?),
            "--threads" => {
                let v = value("threads")?;
                threads = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("bad --threads {v:?} (integer >= 1)"))?;
            }
            "--name" => name = Some(value("name")?),
            "--secret-file" => secret_file = Some(value("secret-file")?),
            "--connect-timeout" => {
                let v = value("connect-timeout")?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --connect-timeout {v:?}"))?;
                timeout = Duration::from_secs(secs);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    let connect = connect.ok_or_else(|| format!("--connect is required\n\n{USAGE}"))?;
    let mut cfg = WorkerConfig::new(connect);
    cfg.threads = threads;
    cfg.connect_timeout = timeout;
    if let Some(n) = name {
        cfg.name = n;
    }
    if let Some(path) = secret_file {
        cfg.secret =
            Some(AuthSecret::from_file(&path).map_err(|e| format!("--secret-file {path}: {e}"))?);
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "[{}] connecting to {} with {} thread(s)",
        cfg.name, cfg.connect, cfg.threads
    );
    match run_worker(&cfg) {
        Ok(cells) => {
            eprintln!("[{}] done: {cells} cell(s) computed", cfg.name);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[{}] error: {e}", cfg.name);
            ExitCode::FAILURE
        }
    }
}
