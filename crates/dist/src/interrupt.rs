//! Minimal Ctrl-C detection without a libc dependency.
//!
//! The coordinator polls [`interrupted`] from its event loop and drains
//! gracefully (workers get `Drain`, partial results are kept) instead of
//! dying mid-merge. The handler only flips an `AtomicBool` — the one
//! thing that is async-signal-safe — and the default disposition is
//! restored after the first delivery so a second Ctrl-C force-kills.

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::INTERRUPTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
        // Restore the default handler: the *next* Ctrl-C terminates.
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT handler (idempotent; a no-op off Unix).
pub fn install_sigint_handler() {
    imp::install();
}

/// Has Ctrl-C been pressed since the handler was installed?
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Test hook: simulates a received SIGINT.
pub fn simulate_interrupt() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Test hook: clears the flag (tests share the static).
pub fn reset_interrupt() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}
