//! Loopback integration tests for the distributed runner: a real
//! coordinator serving real `bobw-worker` subprocesses over TCP, plus
//! protocol-robustness scenarios (fingerprint/credential rejection,
//! lease-timeout reassignment, garbage greetings) driven by hand-rolled
//! fake workers speaking the v4 challenge handshake.

use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bobw_core::{ExperimentConfig, Testbed};
use bobw_dist::{build_fingerprint, AuthSecret, Wire};
use bobw_dist::{
    execute_cell, run_worker, CellOutput, CellSpec, Challenge, ClientHello, Coordinator,
    CoordinatorConfig, Endpoint, FromWorker, Greeting, Hello, HelloReply, ToWorker, WorkerConfig,
    PROTOCOL_VERSION,
};

/// A config small enough for debug-mode tests but large enough that the
/// batch outlives the mid-run worker kill.
fn test_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(5);
    cfg.targets_per_site = 10;
    cfg.probe.duration = bobw_event::SimDuration::from_secs(45);
    cfg
}

/// The full ⟨technique, site⟩ grid the distributed run executes.
fn test_cells(tb: &Testbed) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for technique in ["anycast", "reactive-anycast"] {
        for site in tb.cdn.sites() {
            cells.push(CellSpec::Failover {
                technique: technique.to_string(),
                site: tb.cdn.name(site).to_string(),
            });
        }
    }
    cells
}

/// Serializes the deterministic part of the outputs (results only — perf
/// wall times are host/scheduling dependent by design).
fn results_json(outputs: &[CellOutput]) -> String {
    let mut parts = Vec::with_capacity(outputs.len());
    for o in outputs {
        match o {
            CellOutput::Failover(r, _) => parts.push(serde_json::to_string(r).unwrap()),
            CellOutput::Control(r, _) => parts.push(serde_json::to_string(r).unwrap()),
        }
    }
    parts.join("\n")
}

fn spawn_worker_process(endpoint: &Endpoint, name: &str, threads: usize) -> Child {
    Command::new(env!("CARGO_BIN_EXE_bobw-worker"))
        .args([
            "--connect",
            &endpoint.to_string(),
            "--name",
            name,
            "--threads",
            &threads.to_string(),
        ])
        .env_remove("BOBW_SECRET")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn bobw-worker")
}

/// Explicitly open (no secret), immune to BOBW_SECRET in the test env.
fn open_config() -> CoordinatorConfig {
    CoordinatorConfig {
        secret: None,
        ..CoordinatorConfig::default()
    }
}

/// The tentpole acceptance test: a coordinator plus two real worker
/// subprocesses — one multiplexing two executor threads over its single
/// connection, one killed mid-run — must produce results byte-identical
/// to a sequential local run of the same cells.
#[test]
fn two_workers_one_killed_matches_local() {
    let cfg = test_config();
    let testbed = Testbed::new(cfg.clone());
    let cells = test_cells(&testbed);

    // Local reference: the exact code path Dispatch::Local uses.
    let local: Vec<CellOutput> = cells
        .iter()
        .map(|c| execute_cell(&testbed, c).expect("local cell"))
        .collect();
    let expected = results_json(&local);

    let ep = Endpoint::parse("tcp://127.0.0.1:0").unwrap();
    let mut coordinator = Coordinator::bind(&ep, open_config()).unwrap();
    let serve_at = coordinator.endpoint().expect("bound").clone();

    let w1 = spawn_worker_process(&serve_at, "w1", 2);
    let victim = Arc::new(Mutex::new(spawn_worker_process(&serve_at, "w2", 1)));

    // Kill w2 mid-run; the coordinator must requeue its leased cell(s).
    let killer = {
        let victim = Arc::clone(&victim);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(1000));
            // Ignore errors: the batch may already be over on fast hosts.
            let _ = victim.lock().unwrap().kill();
        })
    };

    let outputs = coordinator.run_batch(&cfg, &cells).expect("batch");
    assert_eq!(outputs.len(), cells.len());
    assert_eq!(
        results_json(&outputs),
        expected,
        "distributed results must be byte-identical to the local run"
    );

    coordinator.shutdown();
    killer.join().unwrap();
    let mut w1 = w1;
    let _ = w1.wait();
    let _ = victim.lock().unwrap().wait();
}

/// Performs the worker side of a v4 handshake by hand: receive the
/// challenge, send a `Greeting::Worker` whose auth tag is produced by
/// `tag` from the challenge nonce, and return the reply.
fn handshake(
    ep: &Endpoint,
    protocol: u32,
    fingerprint: u64,
    tag: impl FnOnce(&Challenge) -> Vec<u8>,
) -> HelloReply {
    let mut conn = ep.connect().unwrap();
    let challenge: Challenge = bobw_dist::wire::recv(&mut conn)
        .unwrap()
        .expect("server sends a challenge first");
    let hello = Hello {
        protocol,
        fingerprint,
        worker_name: "impostor".to_string(),
        capacity: 1,
        auth: tag(&challenge),
    };
    let mut payload = Vec::new();
    Greeting::Worker(hello).encode(&mut payload);
    bobw_dist::wire::write_frame(&mut conn, &payload).unwrap();
    bobw_dist::wire::recv::<_, HelloReply>(&mut conn)
        .unwrap()
        .expect("reply")
}

#[test]
fn handshake_rejects_mismatched_workers() {
    let ep = Endpoint::parse("tcp://127.0.0.1:0").unwrap();
    let coordinator = Coordinator::bind(&ep, open_config()).unwrap();
    let serve_at = coordinator.endpoint().expect("bound").clone();

    let no_tag = |_: &Challenge| Vec::new();
    match handshake(&serve_at, PROTOCOL_VERSION, 0xdead_beef, no_tag) {
        HelloReply::Rejected { reason } => assert!(
            reason.contains("fingerprint"),
            "unexpected reason: {reason}"
        ),
        HelloReply::Welcome => panic!("mismatched fingerprint must be rejected"),
    }
    match handshake(&serve_at, PROTOCOL_VERSION + 1, build_fingerprint(), no_tag) {
        HelloReply::Rejected { reason } => {
            assert!(reason.contains("protocol"), "unexpected reason: {reason}")
        }
        HelloReply::Welcome => panic!("mismatched protocol must be rejected"),
    }
    // A well-formed worker is still welcome afterwards.
    match handshake(&serve_at, PROTOCOL_VERSION, build_fingerprint(), no_tag) {
        HelloReply::Welcome => {}
        HelloReply::Rejected { reason } => panic!("valid worker rejected: {reason}"),
    }
    coordinator.shutdown();
}

/// An authenticated coordinator must reject workers with no credential or
/// a wrong-secret credential, and still welcome a properly tagged one.
#[test]
fn handshake_rejects_unauthenticated_workers() {
    let secret = AuthSecret::new("loopback-test-secret");
    let ep = Endpoint::parse("tcp://127.0.0.1:0").unwrap();
    let coordinator = Coordinator::bind(
        &ep,
        CoordinatorConfig {
            secret: Some(secret.clone()),
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    let serve_at = coordinator.endpoint().expect("bound").clone();

    // No credential at all.
    match handshake(&serve_at, PROTOCOL_VERSION, build_fingerprint(), |_| {
        Vec::new()
    }) {
        HelloReply::Rejected { reason } => assert!(
            reason.contains("authentication"),
            "unexpected reason: {reason}"
        ),
        HelloReply::Welcome => panic!("unauthenticated worker must be rejected"),
    }

    // A credential minted from the wrong secret.
    let wrong = AuthSecret::new("not-the-secret");
    match handshake(&serve_at, PROTOCOL_VERSION, build_fingerprint(), |c| {
        wrong.worker_tag(&c.nonce, PROTOCOL_VERSION, build_fingerprint(), "impostor")
    }) {
        HelloReply::Rejected { reason } => assert!(
            reason.contains("authentication"),
            "unexpected reason: {reason}"
        ),
        HelloReply::Welcome => panic!("wrong-secret worker must be rejected"),
    }

    // A correctly tagged hand-rolled worker is welcome.
    match handshake(&serve_at, PROTOCOL_VERSION, build_fingerprint(), |c| {
        secret.worker_tag(&c.nonce, PROTOCOL_VERSION, build_fingerprint(), "impostor")
    }) {
        HelloReply::Welcome => {}
        HelloReply::Rejected { reason } => panic!("authed worker rejected: {reason}"),
    }

    // The real worker path with *no* secret fails fast client-side — the
    // challenge says authentication is required.
    let mut wc = WorkerConfig::new(serve_at);
    wc.name = "anon".to_string();
    wc.secret = None;
    let err = run_worker(&wc).expect_err("secretless worker must fail");
    assert!(err.contains("authentication"), "unexpected error: {err}");

    coordinator.shutdown();
}

/// A client greeting on a plain batch coordinator is turned away with a
/// pointer at `bobw serve`, and a garbage first frame (not a greeting at
/// all) just drops the connection.
#[test]
fn handshake_rejects_clients_and_garbage() {
    let ep = Endpoint::parse("tcp://127.0.0.1:0").unwrap();
    let coordinator = Coordinator::bind(&ep, open_config()).unwrap();
    let serve_at = coordinator.endpoint().expect("bound").clone();

    // Client greeting.
    let mut conn = serve_at.connect().unwrap();
    let _: Challenge = bobw_dist::wire::recv(&mut conn)
        .unwrap()
        .expect("challenge");
    let mut payload = Vec::new();
    Greeting::Client(ClientHello {
        protocol: PROTOCOL_VERSION,
        client_name: "curious".to_string(),
        auth: Vec::new(),
    })
    .encode(&mut payload);
    bobw_dist::wire::write_frame(&mut conn, &payload).unwrap();
    match bobw_dist::wire::recv::<_, HelloReply>(&mut conn)
        .unwrap()
        .expect("reply")
    {
        HelloReply::Rejected { reason } => {
            assert!(reason.contains("bobw serve"), "unexpected reason: {reason}")
        }
        HelloReply::Welcome => panic!("client greeting must be rejected by a batch coordinator"),
    }

    // Garbage greeting: an unknown discriminant. The server must drop the
    // connection without welcoming anything.
    let mut conn = serve_at.connect().unwrap();
    let _: Challenge = bobw_dist::wire::recv(&mut conn)
        .unwrap()
        .expect("challenge");
    bobw_dist::wire::write_frame(&mut conn, &[0xff; 24]).unwrap();
    match bobw_dist::wire::recv::<_, HelloReply>(&mut conn) {
        Ok(None) | Err(_) => {} // dropped, as it must be
        Ok(Some(reply)) => panic!("garbage greeting must not be answered, got {reply:?}"),
    }

    coordinator.shutdown();
}

/// A worker that handshakes correctly, acks the batch, accepts an
/// assignment — and then goes silent (no heartbeat, no result, socket
/// open). The lease must expire and the cell land on a live worker.
#[test]
fn expired_lease_is_reassigned_to_live_worker() {
    let mut cfg = test_config();
    cfg.targets_per_site = 6;
    let testbed = Testbed::new(cfg.clone());
    let cell = CellSpec::Failover {
        technique: "anycast".to_string(),
        site: testbed
            .cdn
            .name(testbed.cdn.sites().next().unwrap())
            .to_string(),
    };
    let expected = results_json(&[execute_cell(&testbed, &cell).unwrap()]);

    let ep = Endpoint::parse("tcp://127.0.0.1:0").unwrap();
    let mut coordinator = Coordinator::bind(
        &ep,
        CoordinatorConfig {
            lease_timeout: Duration::from_millis(300),
            tick: Duration::from_millis(20),
            secret: None,
        },
    )
    .unwrap();
    let serve_at = coordinator.endpoint().expect("bound").clone();

    let stuck_got_assignment = Arc::new(AtomicBool::new(false));
    let stuck = {
        let serve_at = serve_at.clone();
        let got = Arc::clone(&stuck_got_assignment);
        std::thread::spawn(move || {
            let mut conn = serve_at.connect().unwrap();
            let _: Challenge = bobw_dist::wire::recv(&mut conn)
                .unwrap()
                .expect("challenge");
            let hello = Hello {
                protocol: PROTOCOL_VERSION,
                fingerprint: build_fingerprint(),
                worker_name: "stuck".to_string(),
                capacity: 1,
                auth: Vec::new(),
            };
            let mut payload = Vec::new();
            Greeting::Worker(hello).encode(&mut payload);
            bobw_dist::wire::write_frame(&mut conn, &payload).unwrap();
            match bobw_dist::wire::recv::<_, HelloReply>(&mut conn).unwrap() {
                Some(HelloReply::Welcome) => {}
                other => panic!("stuck worker not welcomed: {other:?}"),
            }
            // Ack batches, swallow the assignment, never answer again —
            // but keep the socket open so only the lease can save the cell.
            loop {
                match bobw_dist::wire::recv::<_, ToWorker>(&mut conn) {
                    Ok(Some(ToWorker::Batch { .. })) => {
                        let mut payload = Vec::new();
                        FromWorker::Ready { cache_hit: false }.encode(&mut payload);
                        bobw_dist::wire::write_frame(&mut conn, &payload).unwrap();
                    }
                    Ok(Some(ToWorker::Assign { .. })) => {
                        got.store(true, Ordering::SeqCst);
                    }
                    Ok(Some(ToWorker::Drain)) => {}
                    Ok(Some(ToWorker::Shutdown)) | Ok(None) | Err(_) => break,
                }
            }
        })
    };

    // A real worker joins late, after the stuck worker owns the lease.
    let rescuer = {
        let serve_at = serve_at.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(700));
            let mut wc = WorkerConfig::new(serve_at);
            wc.name = "rescuer".to_string();
            wc.secret = None;
            run_worker(&wc).expect("rescuer worker")
        })
    };

    let outputs = coordinator
        .run_batch(&cfg, std::slice::from_ref(&cell))
        .expect("batch");
    assert!(
        stuck_got_assignment.load(Ordering::SeqCst),
        "the stuck worker should have received the first assignment"
    );
    assert_eq!(results_json(&outputs), expected);

    coordinator.shutdown();
    let rescued = rescuer.join().unwrap();
    assert_eq!(rescued, 1, "the rescuer must have computed the cell");
    stuck.join().unwrap();
}

/// A `--threads 4` worker multiplexed over one connection must produce
/// the same bytes as the sequential local run — concurrency inside the
/// worker moves scheduling, never content.
#[test]
fn multiplexed_worker_matches_local() {
    let cfg = test_config();
    let testbed = Testbed::new(cfg.clone());
    let cells = test_cells(&testbed);
    let local: Vec<CellOutput> = cells
        .iter()
        .map(|c| execute_cell(&testbed, c).expect("local cell"))
        .collect();

    let ep = Endpoint::parse("tcp://127.0.0.1:0").unwrap();
    let mut coordinator = Coordinator::bind(&ep, open_config()).unwrap();
    let serve_at = coordinator.endpoint().expect("bound").clone();

    let worker = std::thread::spawn(move || {
        let mut wc = WorkerConfig::new(serve_at);
        wc.name = "mux".to_string();
        wc.threads = 4;
        wc.secret = None;
        run_worker(&wc).expect("worker")
    });

    let outputs = coordinator.run_batch(&cfg, &cells).expect("batch");
    assert_eq!(results_json(&outputs), results_json(&local));

    coordinator.shutdown();
    let computed = worker.join().unwrap();
    assert_eq!(computed as usize, cells.len());
}
