//! Per-peer BGP session finite state machine (RFC 4271 §8, simplified).
//!
//! States: Idle → Connect → (Active) → OpenSent → OpenConfirm →
//! Established. The machine is pure: it consumes [`FsmInput`]s and appends
//! [`FsmOutput`]s; the caller owns TCP emulation, timer scheduling, jitter,
//! and message delivery. In particular `Arm(kind, duration)` is a request —
//! the integration layer may schedule it verbatim, add jitter, or elide it
//! under its determinism rules (see DESIGN.md §9); the FSM itself never
//! assumes a timer it armed will fire.
//!
//! Deliberate deviations from RFC 4271, chosen for a discrete-event
//! simulator with instant, reliable "TCP":
//!
//! - Idle listens: an OPEN arriving in Idle/Connect/Active performs a
//!   passive open (the RFC routes this through separate Active-side
//!   connection tracking; collapsing it removes the collision machinery
//!   while keeping both endpoints' observable message flow).
//! - A duplicate OPEN in OpenConfirm is ignored rather than treated as a
//!   collision — the simulator has no parallel TCP connections. An OPEN
//!   arriving in Established *replaces* the session (teardown + passive
//!   accept): it means the peer restarted without us noticing the drop.
//! - `PeerRestart` is an explicit input (the simulator knows the peer's
//!   process died); with graceful restart negotiated it yields
//!   `Down(PeerRestarting)` so the caller retains stale routes.

use crate::msg::{SessionPayload, CEASE, HOLD_TIMER_EXPIRED};
use bobw_event::SimDuration;

/// The six RFC 4271 session states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    Idle,
    Connect,
    Active,
    OpenSent,
    OpenConfirm,
    Established,
}

/// The three session timers (plus the graceful-restart stale sweep, which
/// lives in the integration layer, not here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    ConnectRetry,
    Hold,
    Keepalive,
}

/// Static per-session knobs, shared by both endpoints in the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Proposed hold time; the session uses `min(ours, peer's)`.
    pub hold_time_s: u16,
    /// Base connect-retry interval (jitter is the caller's business).
    pub connect_retry_s: f64,
    /// Graceful-restart window advertised in OPEN; 0 disables the
    /// capability.
    pub gr_restart_s: u16,
    /// Our ASN, advertised in OPEN.
    pub asn: u32,
}

impl SessionConfig {
    /// The OPEN payload this configuration advertises.
    pub fn open_payload(&self) -> SessionPayload {
        SessionPayload::Open {
            asn: self.asn,
            hold_time_s: self.hold_time_s,
            gr_restart_s: self.gr_restart_s,
        }
    }
}

/// Inputs driving the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmInput {
    /// Operator/automatic start: begin connecting.
    Start,
    /// The emulated TCP connection succeeded.
    TcpUp,
    /// The emulated TCP connection failed (link down, peer wedged).
    TcpFail,
    /// A session timer fired.
    Timer(TimerKind),
    /// A session message arrived.
    Recv(SessionPayload),
    /// The peer's BGP process restarted (graceful restart if negotiated).
    PeerRestart,
    /// Tear the session down; `Some(code)` sends a NOTIFICATION first.
    Stop { notify: Option<(u8, u8)> },
}

/// Why an Established session went down — decides whether the caller
/// purges routes learned from the peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownReason {
    /// Hold timer expired: silent loss, purge.
    HoldExpired,
    /// Peer sent NOTIFICATION: purge.
    NotificationReceived { code: u8, subcode: u8 },
    /// We stopped (and possibly notified): purge.
    Stopped,
    /// Peer is restarting with graceful restart negotiated: RETAIN routes
    /// as stale for the advertised window.
    PeerRestarting { window_s: u16 },
}

/// Effects the caller must perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmOutput {
    /// Transmit a session message to the peer.
    Send(SessionPayload),
    /// Try the emulated TCP connect; answer with `TcpUp`/`TcpFail`.
    AttemptConnect,
    /// Request a timer; the caller schedules (with jitter) or elides.
    Arm(TimerKind, SimDuration),
    /// The session reached Established with this negotiated hold time.
    Up { hold: SimDuration },
    /// The session left Established.
    Down { reason: DownReason },
}

/// Hold time used while waiting for the peer's OPEN (RFC 4271 suggests a
/// large value before negotiation).
const HANDSHAKE_HOLD_S: u16 = 240;

/// One peer's session state machine.
#[derive(Debug, Clone)]
pub struct PeerFsm {
    cfg: SessionConfig,
    state: PeerState,
    /// Negotiated hold time, valid from OpenConfirm on.
    hold: SimDuration,
    /// The peer's advertised graceful-restart window, if any.
    peer_gr: Option<u16>,
}

impl PeerFsm {
    pub fn new(cfg: SessionConfig) -> PeerFsm {
        PeerFsm {
            cfg,
            state: PeerState::Idle,
            hold: SimDuration::from_secs_f64(f64::from(cfg.hold_time_s)),
            peer_gr: None,
        }
    }

    pub fn state(&self) -> PeerState {
        self.state
    }

    /// The static configuration this machine was built with (used to build
    /// a fresh machine when the process restarts).
    pub fn config(&self) -> SessionConfig {
        self.cfg
    }

    pub fn is_established(&self) -> bool {
        self.state == PeerState::Established
    }

    /// The negotiated hold time (proposal until OPEN exchange completes).
    pub fn hold_time(&self) -> SimDuration {
        self.hold
    }

    /// The peer's graceful-restart window from its OPEN, if advertised.
    pub fn peer_graceful_restart_s(&self) -> Option<u16> {
        self.peer_gr
    }

    fn connect_retry(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.cfg.connect_retry_s)
    }

    fn keepalive_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.hold.as_secs_f64() / 3.0)
    }

    /// Processes the peer's OPEN: negotiate hold, record capabilities,
    /// move to OpenConfirm. `send_own_open` is set on the passive path
    /// (we have not introduced ourselves yet).
    fn accept_open(
        &mut self,
        hold_time_s: u16,
        gr_restart_s: u16,
        send_own_open: bool,
        out: &mut Vec<FsmOutput>,
    ) {
        let negotiated = self.cfg.hold_time_s.min(hold_time_s);
        self.hold = SimDuration::from_secs_f64(f64::from(negotiated));
        self.peer_gr = (gr_restart_s > 0).then_some(gr_restart_s);
        self.state = PeerState::OpenConfirm;
        if send_own_open {
            out.push(FsmOutput::Send(self.cfg.open_payload()));
        }
        out.push(FsmOutput::Send(SessionPayload::Keepalive));
        out.push(FsmOutput::Arm(
            TimerKind::Keepalive,
            self.keepalive_interval(),
        ));
        out.push(FsmOutput::Arm(TimerKind::Hold, self.hold));
    }

    /// Leaves Established (purging semantics chosen by `reason`) or just
    /// resets a handshake state.
    fn teardown(&mut self, reason: DownReason, out: &mut Vec<FsmOutput>) {
        if self.state == PeerState::Established {
            out.push(FsmOutput::Down { reason });
        }
        self.state = PeerState::Idle;
        self.peer_gr = None;
        self.hold = SimDuration::from_secs_f64(f64::from(self.cfg.hold_time_s));
    }

    /// Advances the machine by one input, appending required effects.
    pub fn step(&mut self, input: FsmInput, out: &mut Vec<FsmOutput>) {
        use FsmInput as I;
        use PeerState as S;
        match (self.state, input) {
            // --- Starting up. ---
            (S::Idle, I::Start) => {
                self.state = S::Connect;
                out.push(FsmOutput::Arm(
                    TimerKind::ConnectRetry,
                    self.connect_retry(),
                ));
                out.push(FsmOutput::AttemptConnect);
            }
            // A Start in any non-Idle, non-Established state restarts the
            // handshake from scratch (the integration layer uses this to
            // kick parked sessions when a link comes back).
            (S::Connect | S::Active | S::OpenSent | S::OpenConfirm, I::Start) => {
                self.teardown(DownReason::Stopped, out);
                self.step(I::Start, out);
            }
            (S::Connect, I::TcpUp) | (S::Active, I::TcpUp) => {
                self.state = S::OpenSent;
                self.hold = SimDuration::from_secs_f64(f64::from(HANDSHAKE_HOLD_S));
                out.push(FsmOutput::Send(self.cfg.open_payload()));
                out.push(FsmOutput::Arm(TimerKind::Hold, self.hold));
            }
            (S::Connect, I::TcpFail) | (S::OpenSent, I::TcpFail) => {
                // Park in Active; the caller decides if/when to retry.
                self.state = S::Active;
                out.push(FsmOutput::Arm(
                    TimerKind::ConnectRetry,
                    self.connect_retry(),
                ));
            }
            (S::Connect | S::Active, I::Timer(TimerKind::ConnectRetry)) => {
                self.state = S::Connect;
                out.push(FsmOutput::AttemptConnect);
            }
            // --- OPEN exchange (active and passive paths). ---
            (
                S::Idle | S::Connect | S::Active,
                I::Recv(SessionPayload::Open {
                    hold_time_s,
                    gr_restart_s,
                    ..
                }),
            ) => {
                // Passive open: the peer reached out first. Idle listens —
                // see the module docs on deviations.
                self.accept_open(hold_time_s, gr_restart_s, true, out);
            }
            (
                S::OpenSent,
                I::Recv(SessionPayload::Open {
                    hold_time_s,
                    gr_restart_s,
                    ..
                }),
            ) => {
                self.accept_open(hold_time_s, gr_restart_s, false, out);
            }
            // Duplicate OPEN during confirmation: ignore (no parallel-
            // connection collisions in the simulator).
            (S::OpenConfirm, I::Recv(SessionPayload::Open { .. })) => {}
            // An OPEN while Established means the peer restarted the
            // session without us noticing a drop (asymmetric teardown):
            // replace — tear down (purging) and accept passively.
            (
                S::Established,
                I::Recv(SessionPayload::Open {
                    hold_time_s,
                    gr_restart_s,
                    ..
                }),
            ) => {
                self.teardown(DownReason::Stopped, out);
                self.accept_open(hold_time_s, gr_restart_s, true, out);
            }
            // --- Reaching Established. ---
            (S::OpenConfirm, I::Recv(SessionPayload::Keepalive)) => {
                self.state = S::Established;
                out.push(FsmOutput::Up { hold: self.hold });
                out.push(FsmOutput::Arm(TimerKind::Hold, self.hold));
            }
            // --- Keepalive liveness. ---
            (S::OpenConfirm | S::Established, I::Timer(TimerKind::Keepalive)) => {
                out.push(FsmOutput::Send(SessionPayload::Keepalive));
                out.push(FsmOutput::Arm(
                    TimerKind::Keepalive,
                    self.keepalive_interval(),
                ));
            }
            (S::Established, I::Recv(SessionPayload::Keepalive)) => {
                out.push(FsmOutput::Arm(TimerKind::Hold, self.hold));
            }
            // --- Dying. ---
            (S::OpenSent | S::OpenConfirm | S::Established, I::Timer(TimerKind::Hold)) => {
                out.push(FsmOutput::Send(SessionPayload::Notification {
                    code: HOLD_TIMER_EXPIRED,
                    subcode: 0,
                }));
                self.teardown(DownReason::HoldExpired, out);
            }
            (_, I::Recv(SessionPayload::Notification { code, subcode })) => {
                self.teardown(DownReason::NotificationReceived { code, subcode }, out);
            }
            (_, I::Stop { notify }) => {
                if let Some((code, subcode)) = notify {
                    if self.state != S::Idle {
                        out.push(FsmOutput::Send(SessionPayload::Notification {
                            code,
                            subcode,
                        }));
                    }
                }
                self.teardown(DownReason::Stopped, out);
            }
            (S::Established, I::PeerRestart) => {
                let reason = match self.peer_gr {
                    Some(window_s) => DownReason::PeerRestarting { window_s },
                    None => DownReason::Stopped,
                };
                self.teardown(reason, out);
            }
            (S::Established, I::TcpFail) => {
                self.teardown(DownReason::Stopped, out);
            }
            // --- Everything else is a stale event: ignore. ---
            (_, _) => {}
        }
    }
}

/// Convenience: a `Stop` that sends an administrative Cease.
pub fn stop_with_cease(subcode: u8) -> FsmInput {
    FsmInput::Stop {
        notify: Some((CEASE, subcode)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: SessionConfig = SessionConfig {
        hold_time_s: 90,
        connect_retry_s: 1.0,
        gr_restart_s: 120,
        asn: 65001,
    };

    fn step(fsm: &mut PeerFsm, input: FsmInput) -> Vec<FsmOutput> {
        let mut out = Vec::new();
        fsm.step(input, &mut out);
        out
    }

    fn peer_open(hold: u16, gr: u16) -> FsmInput {
        FsmInput::Recv(SessionPayload::Open {
            asn: 65002,
            hold_time_s: hold,
            gr_restart_s: gr,
        })
    }

    /// Walks an FSM to Established via the active (initiating) path.
    fn establish(fsm: &mut PeerFsm) {
        step(fsm, FsmInput::Start);
        step(fsm, FsmInput::TcpUp);
        step(fsm, peer_open(90, 120));
        step(fsm, FsmInput::Recv(SessionPayload::Keepalive));
        assert!(fsm.is_established());
    }

    #[test]
    fn active_path_walks_all_six_states() {
        let mut fsm = PeerFsm::new(CFG);
        assert_eq!(fsm.state(), PeerState::Idle);
        let out = step(&mut fsm, FsmInput::Start);
        assert_eq!(fsm.state(), PeerState::Connect);
        assert!(out.contains(&FsmOutput::AttemptConnect));
        assert!(matches!(
            out[0],
            FsmOutput::Arm(TimerKind::ConnectRetry, d) if d.as_secs_f64() == 1.0
        ));
        // TCP fails: park in Active.
        step(&mut fsm, FsmInput::TcpFail);
        assert_eq!(fsm.state(), PeerState::Active);
        // Connect-retry timer fires: back to Connect, try again.
        let out = step(&mut fsm, FsmInput::Timer(TimerKind::ConnectRetry));
        assert_eq!(fsm.state(), PeerState::Connect);
        assert_eq!(out, vec![FsmOutput::AttemptConnect]);
        // TCP succeeds: OPEN goes out, handshake hold armed.
        let out = step(&mut fsm, FsmInput::TcpUp);
        assert_eq!(fsm.state(), PeerState::OpenSent);
        assert_eq!(out[0], FsmOutput::Send(CFG.open_payload()));
        assert!(matches!(
            out[1],
            FsmOutput::Arm(TimerKind::Hold, d) if d.as_secs_f64() == 240.0
        ));
        // Peer's OPEN: negotiate min hold, confirm.
        let out = step(&mut fsm, peer_open(30, 0));
        assert_eq!(fsm.state(), PeerState::OpenConfirm);
        assert_eq!(fsm.hold_time().as_secs_f64(), 30.0);
        assert_eq!(fsm.peer_graceful_restart_s(), None);
        assert_eq!(out[0], FsmOutput::Send(SessionPayload::Keepalive));
        assert!(out.iter().any(
            |o| matches!(o, FsmOutput::Arm(TimerKind::Keepalive, d) if d.as_secs_f64() == 10.0)
        ));
        // Peer's KEEPALIVE: Established, session up.
        let out = step(&mut fsm, FsmInput::Recv(SessionPayload::Keepalive));
        assert_eq!(fsm.state(), PeerState::Established);
        assert!(matches!(out[0], FsmOutput::Up { hold } if hold.as_secs_f64() == 30.0));
    }

    #[test]
    fn passive_open_from_idle_sends_both_messages() {
        let mut fsm = PeerFsm::new(CFG);
        let out = step(&mut fsm, peer_open(90, 120));
        assert_eq!(fsm.state(), PeerState::OpenConfirm);
        assert_eq!(out[0], FsmOutput::Send(CFG.open_payload()));
        assert_eq!(out[1], FsmOutput::Send(SessionPayload::Keepalive));
        assert_eq!(fsm.peer_graceful_restart_s(), Some(120));
    }

    #[test]
    fn keepalive_timer_refreshes_in_openconfirm_and_established() {
        let mut fsm = PeerFsm::new(CFG);
        establish(&mut fsm);
        let out = step(&mut fsm, FsmInput::Timer(TimerKind::Keepalive));
        assert_eq!(out[0], FsmOutput::Send(SessionPayload::Keepalive));
        assert!(matches!(out[1], FsmOutput::Arm(TimerKind::Keepalive, _)));
        // An incoming keepalive re-arms hold.
        let out = step(&mut fsm, FsmInput::Recv(SessionPayload::Keepalive));
        assert_eq!(out, vec![FsmOutput::Arm(TimerKind::Hold, fsm.hold_time())]);
    }

    #[test]
    fn hold_expiry_notifies_and_purges() {
        let mut fsm = PeerFsm::new(CFG);
        establish(&mut fsm);
        let out = step(&mut fsm, FsmInput::Timer(TimerKind::Hold));
        assert_eq!(fsm.state(), PeerState::Idle);
        assert_eq!(
            out[0],
            FsmOutput::Send(SessionPayload::Notification {
                code: HOLD_TIMER_EXPIRED,
                subcode: 0
            })
        );
        assert_eq!(
            out[1],
            FsmOutput::Down {
                reason: DownReason::HoldExpired
            }
        );
    }

    #[test]
    fn hold_expiry_in_handshake_does_not_emit_down() {
        let mut fsm = PeerFsm::new(CFG);
        step(&mut fsm, FsmInput::Start);
        step(&mut fsm, FsmInput::TcpUp);
        assert_eq!(fsm.state(), PeerState::OpenSent);
        let out = step(&mut fsm, FsmInput::Timer(TimerKind::Hold));
        assert_eq!(fsm.state(), PeerState::Idle);
        assert!(!out.iter().any(|o| matches!(o, FsmOutput::Down { .. })));
    }

    #[test]
    fn notification_tears_down_with_received_reason() {
        let mut fsm = PeerFsm::new(CFG);
        establish(&mut fsm);
        let out = step(
            &mut fsm,
            FsmInput::Recv(SessionPayload::Notification {
                code: CEASE,
                subcode: 2,
            }),
        );
        assert_eq!(fsm.state(), PeerState::Idle);
        assert_eq!(
            out,
            vec![FsmOutput::Down {
                reason: DownReason::NotificationReceived {
                    code: CEASE,
                    subcode: 2
                }
            }]
        );
    }

    #[test]
    fn stop_with_notify_sends_cease_first() {
        let mut fsm = PeerFsm::new(CFG);
        establish(&mut fsm);
        let out = step(&mut fsm, stop_with_cease(0));
        assert_eq!(
            out,
            vec![
                FsmOutput::Send(SessionPayload::Notification {
                    code: CEASE,
                    subcode: 0
                }),
                FsmOutput::Down {
                    reason: DownReason::Stopped
                },
            ]
        );
        // Stopping an already-idle session is silent.
        let out = step(&mut fsm, stop_with_cease(0));
        assert!(out.is_empty());
    }

    #[test]
    fn peer_restart_retains_routes_only_with_gr() {
        let mut fsm = PeerFsm::new(CFG);
        establish(&mut fsm);
        assert_eq!(fsm.peer_graceful_restart_s(), Some(120));
        let out = step(&mut fsm, FsmInput::PeerRestart);
        assert_eq!(
            out,
            vec![FsmOutput::Down {
                reason: DownReason::PeerRestarting { window_s: 120 }
            }]
        );
        // Without GR in the peer's OPEN, a restart purges.
        let mut fsm = PeerFsm::new(CFG);
        step(&mut fsm, FsmInput::Start);
        step(&mut fsm, FsmInput::TcpUp);
        step(&mut fsm, peer_open(90, 0));
        step(&mut fsm, FsmInput::Recv(SessionPayload::Keepalive));
        let out = step(&mut fsm, FsmInput::PeerRestart);
        assert_eq!(
            out,
            vec![FsmOutput::Down {
                reason: DownReason::Stopped
            }]
        );
    }

    #[test]
    fn start_kicks_a_parked_session_back_to_connect() {
        let mut fsm = PeerFsm::new(CFG);
        step(&mut fsm, FsmInput::Start);
        step(&mut fsm, FsmInput::TcpFail);
        assert_eq!(fsm.state(), PeerState::Active);
        let out = step(&mut fsm, FsmInput::Start);
        assert_eq!(fsm.state(), PeerState::Connect);
        assert!(out.contains(&FsmOutput::AttemptConnect));
    }

    #[test]
    fn duplicate_open_in_openconfirm_is_ignored() {
        let mut fsm = PeerFsm::new(CFG);
        step(&mut fsm, FsmInput::Start);
        step(&mut fsm, FsmInput::TcpUp);
        step(&mut fsm, peer_open(90, 120));
        assert_eq!(fsm.state(), PeerState::OpenConfirm);
        let hold = fsm.hold_time();
        let out = step(&mut fsm, peer_open(3, 0));
        assert!(out.is_empty());
        assert_eq!(fsm.state(), PeerState::OpenConfirm);
        assert_eq!(fsm.hold_time(), hold);
    }

    #[test]
    fn open_in_established_replaces_the_session() {
        let mut fsm = PeerFsm::new(CFG);
        establish(&mut fsm);
        let out = step(&mut fsm, peer_open(30, 0));
        // Purge the old session, then answer the fresh handshake.
        assert_eq!(
            out[0],
            FsmOutput::Down {
                reason: DownReason::Stopped
            }
        );
        assert_eq!(fsm.state(), PeerState::OpenConfirm);
        assert_eq!(fsm.hold_time().as_secs_f64(), 30.0);
        assert!(out.contains(&FsmOutput::Send(CFG.open_payload())));
        assert!(out.contains(&FsmOutput::Send(SessionPayload::Keepalive)));
    }

    #[test]
    fn stale_timer_inputs_are_noops() {
        let mut fsm = PeerFsm::new(CFG);
        assert!(step(&mut fsm, FsmInput::Timer(TimerKind::Hold)).is_empty());
        assert!(step(&mut fsm, FsmInput::Timer(TimerKind::Keepalive)).is_empty());
        establish(&mut fsm);
        assert!(step(&mut fsm, FsmInput::Timer(TimerKind::ConnectRetry)).is_empty());
    }
}
