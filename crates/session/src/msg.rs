//! BGP message types (RFC 4271 §4) as the simulator models them.
//!
//! Two representations coexist:
//!
//! - [`BgpMessage`]: the full structured message the codec encodes/decodes.
//!   Heap-backed (capability and prefix lists), used at codec boundaries.
//! - [`SessionPayload`]: the `Copy` digest of the session-management
//!   messages (OPEN / KEEPALIVE / NOTIFICATION) that travels inside the
//!   simulator's event enum, which must stay `Copy`. UPDATE never needs a
//!   digest — route payloads already travel as `bobw_bgp::Message`.
//!
//! Conversions between the two are lossless for everything the simulator
//! cares about; the codec round-trips the full structured form.

use bobw_net::{Asn, Prefix};

/// NOTIFICATION error code: hold timer expired (RFC 4271 §6.5).
pub const HOLD_TIMER_EXPIRED: u8 = 4;
/// NOTIFICATION error code: administrative Cease (RFC 4271 §6.7).
pub const CEASE: u8 = 6;

/// An OPEN message: version, ASN, hold-time proposal, router id, and the
/// advertised capabilities (RFC 3392 optional parameters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMsg {
    pub asn: u32,
    pub hold_time_s: u16,
    /// Router identifier; the simulator uses the node id.
    pub bgp_id: u32,
    pub caps: Vec<Capability>,
}

impl OpenMsg {
    /// The graceful-restart window this OPEN advertises, if any.
    pub fn graceful_restart_s(&self) -> Option<u16> {
        self.caps.iter().find_map(|c| match c {
            Capability::GracefulRestart { restart_time_s } => Some(*restart_time_s),
            _ => None,
        })
    }
}

/// A capability advertised in OPEN (RFC 5492 code points).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Capability {
    /// Four-octet AS numbers (RFC 6793, code 65).
    FourOctetAs { asn: u32 },
    /// Graceful restart (RFC 4724, code 64): restart window in seconds
    /// (12-bit field on the wire, so at most 4095).
    GracefulRestart { restart_time_s: u16 },
    /// Anything else, preserved verbatim so decode(encode(x)) round-trips.
    Unknown { code: u8, data: Vec<u8> },
}

/// The path attributes an UPDATE carries for its announced prefixes.
///
/// `origin_node` is the simulator's catchment-accounting metadata (see
/// `bobw_bgp::WireRoute::origin`); it rides in a private-use optional
/// transitive attribute, the way real CDNs smuggle site identity through
/// communities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateAttrs {
    pub as_path: Vec<Asn>,
    pub med: u32,
    pub origin_node: u32,
    /// The well-known NO_EXPORT community.
    pub no_export: bool,
}

/// An UPDATE message: withdrawn routes, attributes, announced NLRI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateMsg {
    pub withdrawn: Vec<Prefix>,
    /// `None` for a pure withdrawal (no NLRI, so no attributes).
    pub attrs: Option<UpdateAttrs>,
    pub nlri: Vec<Prefix>,
}

/// A NOTIFICATION message: error code, subcode, diagnostic data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotificationMsg {
    pub code: u8,
    pub subcode: u8,
    pub data: Vec<u8>,
}

/// One full BGP message, ready for the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpMessage {
    Open(OpenMsg),
    Update(UpdateMsg),
    Notification(NotificationMsg),
    Keepalive,
}

/// The `Copy` digest of a session-management message, sized for the
/// simulator's event enum. `gr_restart_s == 0` means "no graceful-restart
/// capability advertised" (a zero restart window would be useless anyway).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPayload {
    Open {
        asn: u32,
        hold_time_s: u16,
        gr_restart_s: u16,
    },
    Keepalive,
    Notification {
        code: u8,
        subcode: u8,
    },
}

impl SessionPayload {
    /// Expands the digest into the full message the codec understands.
    pub fn to_message(self, bgp_id: u32) -> BgpMessage {
        match self {
            SessionPayload::Open {
                asn,
                hold_time_s,
                gr_restart_s,
            } => {
                let mut caps = vec![Capability::FourOctetAs { asn }];
                if gr_restart_s > 0 {
                    caps.push(Capability::GracefulRestart {
                        restart_time_s: gr_restart_s,
                    });
                }
                BgpMessage::Open(OpenMsg {
                    asn,
                    hold_time_s,
                    bgp_id,
                    caps,
                })
            }
            SessionPayload::Keepalive => BgpMessage::Keepalive,
            SessionPayload::Notification { code, subcode } => {
                BgpMessage::Notification(NotificationMsg {
                    code,
                    subcode,
                    data: Vec::new(),
                })
            }
        }
    }

    /// Digests a decoded message back into the event-sized form. Returns
    /// `None` for UPDATE, which travels through the route machinery.
    pub fn from_message(msg: &BgpMessage) -> Option<SessionPayload> {
        match msg {
            BgpMessage::Open(o) => Some(SessionPayload::Open {
                asn: o.asn,
                hold_time_s: o.hold_time_s,
                gr_restart_s: o.graceful_restart_s().unwrap_or(0),
            }),
            BgpMessage::Keepalive => Some(SessionPayload::Keepalive),
            BgpMessage::Notification(n) => Some(SessionPayload::Notification {
                code: n.code,
                subcode: n.subcode,
            }),
            BgpMessage::Update(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_round_trips_through_full_message() {
        let cases = [
            SessionPayload::Open {
                asn: 65001,
                hold_time_s: 90,
                gr_restart_s: 120,
            },
            SessionPayload::Open {
                asn: 4_200_000_000,
                hold_time_s: 3,
                gr_restart_s: 0,
            },
            SessionPayload::Keepalive,
            SessionPayload::Notification {
                code: CEASE,
                subcode: 2,
            },
        ];
        for p in cases {
            let full = p.to_message(7);
            assert_eq!(SessionPayload::from_message(&full), Some(p));
        }
    }

    #[test]
    fn update_has_no_payload_digest() {
        let u = BgpMessage::Update(UpdateMsg {
            withdrawn: vec![],
            attrs: None,
            nlri: vec![],
        });
        assert_eq!(SessionPayload::from_message(&u), None);
    }
}
