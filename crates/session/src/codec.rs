//! Hand-rolled RFC 4271 wire codec.
//!
//! Framing: 16-byte all-ones marker, 2-byte big-endian total length,
//! 1-byte type, then the per-type body. OPEN carries RFC 5492 capability
//! parameters (four-octet AS, graceful restart); UPDATE carries withdrawn
//! routes, a canonical attribute set (ORIGIN, AS_PATH, MED, COMMUNITIES
//! for NO_EXPORT, plus a private-use attribute for the simulator's origin
//! node), and NLRI.
//!
//! The decoder is total: every length is validated against the remaining
//! buffer before a single byte is read, so malformed or truncated input
//! returns a [`CodecError`] — it can never panic or read out of bounds.
//! This mirrors the dist-handshake rule that garbage off the wire must be
//! rejected, not trusted.

use crate::msg::{BgpMessage, Capability, NotificationMsg, OpenMsg, UpdateAttrs, UpdateMsg};
use bobw_net::{Asn, Prefix};

/// BGP protocol version carried in OPEN.
pub const BGP_VERSION: u8 = 4;
/// Header size: marker(16) + length(2) + type(1).
pub const HEADER_LEN: usize = 19;
/// RFC 4271 maximum message size.
pub const MAX_MSG_LEN: usize = 4096;
/// The 2-byte AS field placeholder when the real ASN needs four octets.
pub const AS_TRANS: u16 = 23456;

const TYPE_OPEN: u8 = 1;
const TYPE_UPDATE: u8 = 2;
const TYPE_NOTIFICATION: u8 = 3;
const TYPE_KEEPALIVE: u8 = 4;

const CAP_PARAM: u8 = 2;
const CAP_GRACEFUL_RESTART: u8 = 64;
const CAP_FOUR_OCTET_AS: u8 = 65;

const ATTR_ORIGIN: u8 = 1;
const ATTR_AS_PATH: u8 = 2;
const ATTR_MED: u8 = 4;
const ATTR_COMMUNITIES: u8 = 8;
/// Private-use attribute carrying the simulator's originating node id.
const ATTR_ORIGIN_NODE: u8 = 240;

const FLAG_OPTIONAL: u8 = 0x80;
const FLAG_TRANSITIVE: u8 = 0x40;
const FLAG_EXT_LEN: u8 = 0x10;

const NO_EXPORT_COMMUNITY: u32 = 0xFFFF_FF01;
const SEG_AS_SEQUENCE: u8 = 2;

/// Why a message failed to encode or decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than a header, or a body shorter than its length field.
    Truncated,
    /// The 16-byte marker is not all ones.
    BadMarker,
    /// Length field outside `[19, 4096]`, or inconsistent with the body.
    BadLength,
    /// Unknown message type byte.
    BadType(u8),
    /// A structurally invalid field; the string names it.
    Invalid(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated message"),
            CodecError::BadMarker => write!(f, "bad marker"),
            CodecError::BadLength => write!(f, "bad length field"),
            CodecError::BadType(t) => write!(f, "unknown message type {t}"),
            CodecError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Bounds-checked big-endian reader. Every accessor validates the
/// remaining length first; nothing here can slice out of range.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Encodes one message into a fresh framed buffer.
///
/// Fails only on structurally unencodable input (a capability blob that
/// cannot fit its length byte, a four-octet ASN without the capability to
/// carry it, a message over the RFC size cap) — never on well-formed
/// simulator traffic.
pub fn encode(msg: &BgpMessage) -> Result<Vec<u8>, CodecError> {
    let mut out = vec![0xFF; 16];
    put_u16(&mut out, 0); // length, patched below
    match msg {
        BgpMessage::Open(o) => {
            out.push(TYPE_OPEN);
            encode_open(o, &mut out)?;
        }
        BgpMessage::Update(u) => {
            out.push(TYPE_UPDATE);
            encode_update(u, &mut out)?;
        }
        BgpMessage::Notification(n) => {
            out.push(TYPE_NOTIFICATION);
            out.push(n.code);
            out.push(n.subcode);
            out.extend_from_slice(&n.data);
        }
        BgpMessage::Keepalive => out.push(TYPE_KEEPALIVE),
    }
    if out.len() > MAX_MSG_LEN {
        return Err(CodecError::BadLength);
    }
    let len = out.len() as u16;
    out[16..18].copy_from_slice(&len.to_be_bytes());
    Ok(out)
}

fn encode_open(o: &OpenMsg, out: &mut Vec<u8>) -> Result<(), CodecError> {
    out.push(BGP_VERSION);
    let has_as4 = o
        .caps
        .iter()
        .any(|c| matches!(c, Capability::FourOctetAs { asn } if *asn == o.asn));
    let short_as = match u16::try_from(o.asn) {
        Ok(v) => v,
        Err(_) if has_as4 => AS_TRANS,
        Err(_) => return Err(CodecError::Invalid("4-octet ASN without AS4 capability")),
    };
    put_u16(out, short_as);
    put_u16(out, o.hold_time_s);
    put_u32(out, o.bgp_id);
    // One capability parameter per capability, each its own opt param.
    let mut params = Vec::new();
    for cap in &o.caps {
        let mut body = Vec::new();
        match cap {
            Capability::FourOctetAs { asn } => {
                body.push(CAP_FOUR_OCTET_AS);
                body.push(4);
                put_u32(&mut body, *asn);
            }
            Capability::GracefulRestart { restart_time_s } => {
                if *restart_time_s > 0x0FFF {
                    return Err(CodecError::Invalid("graceful-restart time > 4095"));
                }
                body.push(CAP_GRACEFUL_RESTART);
                body.push(2);
                put_u16(&mut body, *restart_time_s);
            }
            Capability::Unknown { code, data } => {
                if data.len() > 253 {
                    return Err(CodecError::Invalid("capability value too long"));
                }
                body.push(*code);
                body.push(data.len() as u8);
                body.extend_from_slice(data);
            }
        }
        params.push(CAP_PARAM);
        params.push(body.len() as u8);
        params.extend_from_slice(&body);
    }
    let plen = u8::try_from(params.len())
        .map_err(|_| CodecError::Invalid("optional parameters too long"))?;
    out.push(plen);
    out.extend_from_slice(&params);
    Ok(())
}

fn encode_prefix(p: &Prefix, out: &mut Vec<u8>) {
    let len = p.len();
    out.push(len);
    let bytes = p.bits().to_be_bytes();
    out.extend_from_slice(&bytes[..len.div_ceil(8) as usize]);
}

fn encode_attr(out: &mut Vec<u8>, flags: u8, kind: u8, body: &[u8]) -> Result<(), CodecError> {
    if body.len() <= 255 {
        out.push(flags);
        out.push(kind);
        out.push(body.len() as u8);
    } else {
        let len =
            u16::try_from(body.len()).map_err(|_| CodecError::Invalid("attribute too long"))?;
        out.push(flags | FLAG_EXT_LEN);
        out.push(kind);
        put_u16(out, len);
    }
    out.extend_from_slice(body);
    Ok(())
}

fn encode_update(u: &UpdateMsg, out: &mut Vec<u8>) -> Result<(), CodecError> {
    if !u.nlri.is_empty() && u.attrs.is_none() {
        return Err(CodecError::Invalid("NLRI without path attributes"));
    }
    let mut withdrawn = Vec::new();
    for p in &u.withdrawn {
        encode_prefix(p, &mut withdrawn);
    }
    let wlen = u16::try_from(withdrawn.len())
        .map_err(|_| CodecError::Invalid("withdrawn routes too long"))?;
    put_u16(out, wlen);
    out.extend_from_slice(&withdrawn);

    let mut attrs = Vec::new();
    if let Some(a) = &u.attrs {
        encode_attr(&mut attrs, FLAG_TRANSITIVE, ATTR_ORIGIN, &[0])?;
        let mut path = Vec::new();
        for chunk in a.as_path.chunks(255) {
            path.push(SEG_AS_SEQUENCE);
            path.push(chunk.len() as u8);
            for asn in chunk {
                put_u32(&mut path, asn.0);
            }
        }
        encode_attr(&mut attrs, FLAG_TRANSITIVE, ATTR_AS_PATH, &path)?;
        encode_attr(&mut attrs, FLAG_OPTIONAL, ATTR_MED, &a.med.to_be_bytes())?;
        if a.no_export {
            encode_attr(
                &mut attrs,
                FLAG_OPTIONAL | FLAG_TRANSITIVE,
                ATTR_COMMUNITIES,
                &NO_EXPORT_COMMUNITY.to_be_bytes(),
            )?;
        }
        encode_attr(
            &mut attrs,
            FLAG_OPTIONAL | FLAG_TRANSITIVE,
            ATTR_ORIGIN_NODE,
            &a.origin_node.to_be_bytes(),
        )?;
    }
    let alen =
        u16::try_from(attrs.len()).map_err(|_| CodecError::Invalid("path attributes too long"))?;
    put_u16(out, alen);
    out.extend_from_slice(&attrs);
    for p in &u.nlri {
        encode_prefix(p, out);
    }
    Ok(())
}

/// Decodes one framed message from the front of `buf`; returns the message
/// and the number of bytes consumed. Total: never panics, never reads past
/// `buf`, rejects every malformed input with a [`CodecError`].
pub fn decode(buf: &[u8]) -> Result<(BgpMessage, usize), CodecError> {
    if buf.len() < HEADER_LEN {
        return Err(CodecError::Truncated);
    }
    if buf[..16].iter().any(|&b| b != 0xFF) {
        return Err(CodecError::BadMarker);
    }
    let len = u16::from_be_bytes([buf[16], buf[17]]) as usize;
    if !(HEADER_LEN..=MAX_MSG_LEN).contains(&len) {
        return Err(CodecError::BadLength);
    }
    if buf.len() < len {
        return Err(CodecError::Truncated);
    }
    let kind = buf[18];
    let mut r = Reader::new(&buf[HEADER_LEN..len]);
    let msg = match kind {
        TYPE_OPEN => BgpMessage::Open(decode_open(&mut r)?),
        TYPE_UPDATE => BgpMessage::Update(decode_update(&mut r)?),
        TYPE_NOTIFICATION => {
            let code = r.u8()?;
            let subcode = r.u8()?;
            let data = r.take(r.remaining())?.to_vec();
            BgpMessage::Notification(NotificationMsg {
                code,
                subcode,
                data,
            })
        }
        TYPE_KEEPALIVE => BgpMessage::Keepalive,
        t => return Err(CodecError::BadType(t)),
    };
    if r.remaining() != 0 {
        return Err(CodecError::BadLength);
    }
    Ok((msg, len))
}

fn decode_open(r: &mut Reader<'_>) -> Result<OpenMsg, CodecError> {
    if r.u8()? != BGP_VERSION {
        return Err(CodecError::Invalid("unsupported BGP version"));
    }
    let short_as = r.u16()?;
    let hold_time_s = r.u16()?;
    let bgp_id = r.u32()?;
    let plen = r.u8()? as usize;
    let mut params = Reader::new(r.take(plen)?);
    let mut caps = Vec::new();
    while params.remaining() > 0 {
        let ptype = params.u8()?;
        let pbody_len = params.u8()? as usize;
        let mut pbody = Reader::new(params.take(pbody_len)?);
        if ptype != CAP_PARAM {
            return Err(CodecError::Invalid("unknown optional parameter type"));
        }
        while pbody.remaining() > 0 {
            let code = pbody.u8()?;
            let clen = pbody.u8()? as usize;
            let value = pbody.take(clen)?;
            caps.push(match (code, clen) {
                (CAP_FOUR_OCTET_AS, 4) => Capability::FourOctetAs {
                    asn: u32::from_be_bytes([value[0], value[1], value[2], value[3]]),
                },
                (CAP_GRACEFUL_RESTART, 2) => Capability::GracefulRestart {
                    restart_time_s: u16::from_be_bytes([value[0], value[1]]) & 0x0FFF,
                },
                _ => Capability::Unknown {
                    code,
                    data: value.to_vec(),
                },
            });
        }
    }
    let asn = caps
        .iter()
        .find_map(|c| match c {
            Capability::FourOctetAs { asn } => Some(*asn),
            _ => None,
        })
        .unwrap_or(u32::from(short_as));
    Ok(OpenMsg {
        asn,
        hold_time_s,
        bgp_id,
        caps,
    })
}

fn decode_prefix(r: &mut Reader<'_>) -> Result<Prefix, CodecError> {
    let len = r.u8()?;
    if len > 32 {
        return Err(CodecError::Invalid("prefix length > 32"));
    }
    let nbytes = len.div_ceil(8) as usize;
    let raw = r.take(nbytes)?;
    let mut bits = [0u8; 4];
    bits[..nbytes].copy_from_slice(raw);
    let bits = u32::from_be_bytes(bits);
    // Strict: host bits under the mask must be zero, matching the Prefix
    // invariant — a nonzero tail means corruption, not a real route.
    if bits & !Prefix::mask(len) != 0 {
        return Err(CodecError::Invalid("prefix has nonzero host bits"));
    }
    Ok(Prefix::new(bits, len))
}

fn decode_update(r: &mut Reader<'_>) -> Result<UpdateMsg, CodecError> {
    let wlen = r.u16()? as usize;
    let mut wr = Reader::new(r.take(wlen)?);
    let mut withdrawn = Vec::new();
    while wr.remaining() > 0 {
        withdrawn.push(decode_prefix(&mut wr)?);
    }
    let alen = r.u16()? as usize;
    let mut ar = Reader::new(r.take(alen)?);
    let mut attrs: Option<UpdateAttrs> = None;
    let mut saw_origin = false;
    let mut saw_path = false;
    while ar.remaining() > 0 {
        let flags = ar.u8()?;
        let kind = ar.u8()?;
        let blen = if flags & FLAG_EXT_LEN != 0 {
            ar.u16()? as usize
        } else {
            ar.u8()? as usize
        };
        let mut body = Reader::new(ar.take(blen)?);
        let a = attrs.get_or_insert_with(|| UpdateAttrs {
            as_path: Vec::new(),
            med: 0,
            origin_node: 0,
            no_export: false,
        });
        match kind {
            ATTR_ORIGIN => {
                if blen != 1 {
                    return Err(CodecError::Invalid("ORIGIN length"));
                }
                body.u8()?;
                saw_origin = true;
            }
            ATTR_AS_PATH => {
                while body.remaining() > 0 {
                    if body.u8()? != SEG_AS_SEQUENCE {
                        return Err(CodecError::Invalid("AS_PATH segment type"));
                    }
                    let n = body.u8()? as usize;
                    for _ in 0..n {
                        a.as_path.push(Asn(body.u32()?));
                    }
                }
                saw_path = true;
            }
            ATTR_MED => {
                if blen != 4 {
                    return Err(CodecError::Invalid("MED length"));
                }
                a.med = body.u32()?;
            }
            ATTR_COMMUNITIES => {
                if blen % 4 != 0 {
                    return Err(CodecError::Invalid("COMMUNITIES length"));
                }
                while body.remaining() > 0 {
                    if body.u32()? == NO_EXPORT_COMMUNITY {
                        a.no_export = true;
                    }
                }
            }
            ATTR_ORIGIN_NODE => {
                if blen != 4 {
                    return Err(CodecError::Invalid("origin-node length"));
                }
                a.origin_node = body.u32()?;
            }
            _ if flags & FLAG_OPTIONAL != 0 => {
                // Unknown optional attribute: skip (already consumed).
            }
            _ => return Err(CodecError::Invalid("unknown well-known attribute")),
        }
    }
    let mut nlri = Vec::new();
    while r.remaining() > 0 {
        nlri.push(decode_prefix(r)?);
    }
    if !(nlri.is_empty() || (saw_origin && saw_path)) {
        return Err(CodecError::Invalid("NLRI without mandatory attributes"));
    }
    // An attribute block that announced nothing (pure withdrawal with
    // stray attributes) still decodes; equality with a canonical encode
    // requires attrs only alongside NLRI, which `encode` enforces.
    if nlri.is_empty() && alen == 0 {
        attrs = None;
    }
    Ok(UpdateMsg {
        withdrawn,
        attrs,
        nlri,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::CEASE;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn rt(msg: BgpMessage) {
        let bytes = encode(&msg).unwrap();
        let (back, used) = decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, msg);
    }

    #[test]
    fn open_round_trips_with_capabilities() {
        rt(BgpMessage::Open(OpenMsg {
            asn: 4_200_001_234,
            hold_time_s: 90,
            bgp_id: 17,
            caps: vec![
                Capability::FourOctetAs { asn: 4_200_001_234 },
                Capability::GracefulRestart {
                    restart_time_s: 120,
                },
                Capability::Unknown {
                    code: 70,
                    data: vec![1, 2, 3],
                },
            ],
        }));
    }

    #[test]
    fn update_round_trips() {
        rt(BgpMessage::Update(UpdateMsg {
            withdrawn: vec![p("10.0.0.0/8"), p("192.168.4.0/24")],
            attrs: Some(UpdateAttrs {
                as_path: vec![Asn(65001), Asn(65001), Asn(174)],
                med: 30,
                origin_node: 12,
                no_export: true,
            }),
            nlri: vec![p("184.164.244.0/24")],
        }));
    }

    #[test]
    fn pure_withdrawal_round_trips() {
        rt(BgpMessage::Update(UpdateMsg {
            withdrawn: vec![p("184.164.244.0/23")],
            attrs: None,
            nlri: vec![],
        }));
    }

    #[test]
    fn keepalive_and_notification_round_trip() {
        rt(BgpMessage::Keepalive);
        rt(BgpMessage::Notification(NotificationMsg {
            code: CEASE,
            subcode: 2,
            data: vec![0xAB, 0xCD],
        }));
    }

    #[test]
    fn default_route_round_trips() {
        rt(BgpMessage::Update(UpdateMsg {
            withdrawn: vec![Prefix::DEFAULT],
            attrs: None,
            nlri: vec![],
        }));
    }

    #[test]
    fn rejects_bad_marker_and_truncation() {
        let good = encode(&BgpMessage::Keepalive).unwrap();
        let mut bad = good.clone();
        bad[3] = 0;
        assert_eq!(decode(&bad), Err(CodecError::BadMarker));
        for cut in 0..good.len() {
            assert!(decode(&good[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn rejects_bad_type_and_length() {
        let mut m = encode(&BgpMessage::Keepalive).unwrap();
        m[18] = 9;
        assert_eq!(decode(&m), Err(CodecError::BadType(9)));
        let mut m = encode(&BgpMessage::Keepalive).unwrap();
        m[17] = 18; // length below the header floor
        assert_eq!(decode(&m), Err(CodecError::BadLength));
    }

    #[test]
    fn rejects_nonzero_host_bits() {
        // 10.0.0.1/8 is not a valid masked prefix.
        let msg = BgpMessage::Update(UpdateMsg {
            withdrawn: vec![p("10.0.0.0/8")],
            attrs: None,
            nlri: vec![],
        });
        let mut bytes = encode(&msg).unwrap();
        // withdrawn block: [len=8, 0x0A]; extend the wire manually is
        // fiddly, so corrupt the network byte below the mask instead:
        // /8 keeps one byte; flip the length to /4 so bits 0x0A gain a tail.
        let start = HEADER_LEN + 2;
        bytes[start] = 4;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn as_trans_without_capability_is_rejected_on_encode() {
        let e = encode(&BgpMessage::Open(OpenMsg {
            asn: 70_000,
            hold_time_s: 90,
            bgp_id: 1,
            caps: vec![],
        }));
        assert!(e.is_err());
    }
}
