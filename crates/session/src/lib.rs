//! Message-level BGP session layer.
//!
//! The abstract simulator models a peering as a boolean plus a hold timer.
//! This crate supplies the protocol-fidelity alternative: RFC 4271 wire
//! messages with a hand-rolled codec ([`codec`]), and a per-peer finite
//! state machine ([`fsm`]) whose transitions — not a flag — decide when
//! routes flow and when they are purged.
//!
//! The crate is deliberately pure: no RNG, no clocks, no event queue. The
//! FSM consumes [`fsm::FsmInput`]s and emits [`fsm::FsmOutput`]s; the
//! simulator (in `bobw-bgp`) owns scheduling, jitter, and delivery. That
//! split keeps determinism auditable — every draw of randomness happens in
//! exactly one place, the integration layer — and makes the state machine
//! testable without a simulator (see the exhaustive transition tests in
//! [`fsm`]).

pub mod codec;
pub mod fsm;
pub mod msg;

pub use codec::{decode, encode, CodecError};
pub use fsm::{DownReason, FsmInput, FsmOutput, PeerFsm, PeerState, SessionConfig, TimerKind};
pub use msg::{
    BgpMessage, Capability, NotificationMsg, OpenMsg, SessionPayload, UpdateAttrs, UpdateMsg,
    CEASE, HOLD_TIMER_EXPIRED,
};
