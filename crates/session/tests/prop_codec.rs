//! Property tests for the BGP wire codec: every message type round-trips
//! through encode/decode, and the decoder rejects — without panicking —
//! truncated messages and arbitrary garbage. Mirrors the dist handshake's
//! garbage-rejection discipline.

use bobw_net::{Asn, Prefix};
use bobw_session::{
    decode, encode, BgpMessage, Capability, NotificationMsg, OpenMsg, UpdateAttrs, UpdateMsg,
};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (0u32..=u32::MAX, 0u8..=32).prop_map(|(bits, len)| Prefix::new(bits, len))
}

fn arb_caps() -> impl Strategy<Value = Vec<Capability>> {
    proptest::collection::vec(
        prop_oneof![
            (1u16..=4095).prop_map(|restart_time_s| Capability::GracefulRestart { restart_time_s }),
            // Codes 64/65 are claimed by the known capabilities; stay clear
            // so Unknown round-trips as Unknown.
            (66u8..=255, proptest::collection::vec(0u8..=255, 0..8))
                .prop_map(|(code, data)| Capability::Unknown { code, data }),
        ],
        0..3,
    )
}

fn arb_open() -> impl Strategy<Value = BgpMessage> {
    (0u32..=u32::MAX, 0u16..=65535, 0u32..=u32::MAX, arb_caps()).prop_map(
        |(asn, hold_time_s, bgp_id, mut caps)| {
            // The four-octet capability always travels (as the simulator
            // sends it); it is also what makes any 32-bit ASN encodable.
            caps.insert(0, Capability::FourOctetAs { asn });
            BgpMessage::Open(OpenMsg {
                asn,
                hold_time_s,
                bgp_id,
                caps,
            })
        },
    )
}

fn arb_attrs() -> impl Strategy<Value = UpdateAttrs> {
    (
        proptest::collection::vec((0u32..=u32::MAX).prop_map(Asn), 0..300),
        0u32..=u32::MAX,
        0u32..=u32::MAX,
        any::<bool>(),
    )
        .prop_map(|(as_path, med, origin_node, no_export)| UpdateAttrs {
            as_path,
            med,
            origin_node,
            no_export,
        })
}

fn arb_update() -> impl Strategy<Value = BgpMessage> {
    (
        proptest::collection::vec(arb_prefix(), 0..6),
        arb_attrs(),
        proptest::collection::vec(arb_prefix(), 0..6),
    )
        .prop_map(|(withdrawn, attrs, nlri)| {
            // Attributes only make sense alongside NLRI (encode enforces
            // the NLRI-without-attrs direction).
            let attrs = (!nlri.is_empty()).then_some(attrs);
            BgpMessage::Update(UpdateMsg {
                withdrawn,
                attrs,
                nlri,
            })
        })
}

fn arb_notification() -> impl Strategy<Value = BgpMessage> {
    (
        0u8..=255,
        0u8..=255,
        proptest::collection::vec(0u8..=255, 0..16),
    )
        .prop_map(|(code, subcode, data)| {
            BgpMessage::Notification(NotificationMsg {
                code,
                subcode,
                data,
            })
        })
}

fn arb_message() -> impl Strategy<Value = BgpMessage> {
    prop_oneof![
        arb_open(),
        arb_update(),
        arb_notification(),
        Just(BgpMessage::Keepalive),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// decode(encode(msg)) == msg for every message type.
    #[test]
    fn every_message_type_round_trips(msg in arb_message()) {
        let bytes = encode(&msg).expect("simulator-shaped messages encode");
        let (back, used) = decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, msg);
    }

    /// Every strict prefix of a valid encoding is rejected, never panics.
    #[test]
    fn truncation_always_errors(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let bytes = encode(&msg).expect("encodes");
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(decode(&bytes[..cut]).is_err());
    }

    /// Arbitrary garbage never panics the decoder; without the all-ones
    /// marker it is always rejected.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        let _ = decode(&bytes);
        if bytes.len() >= 16 && bytes[..16].iter().any(|&b| b != 0xFF) {
            prop_assert!(decode(&bytes).is_err());
        }
    }

    /// Single-byte corruption of a valid message either decodes to some
    /// well-formed message or errors — it never panics. (Bit flips in
    /// length/type/body fields exercise every validation path.)
    #[test]
    fn bit_flips_never_panic(msg in arb_message(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = encode(&msg).expect("encodes");
        let pos = ((bytes.len() as f64) * pos_frac) as usize;
        prop_assert!(pos < bytes.len());
        bytes[pos] ^= 1 << bit;
        let _ = decode(&bytes);
    }
}
