//! Hop-by-hop forwarding over the current FIBs.

use bobw_bgp::{BgpSim, NextHop};
use bobw_event::SimDuration;
use bobw_net::{Ipv4Net, NodeId};
use bobw_topology::Topology;

/// Hop budget for a forwarding walk, standing in for the IP TTL. AS-level
/// paths are short; anything beyond this is a routing loop.
pub const MAX_HOPS: usize = 64;

/// Everything a forwarding walk needs to know about the world.
pub struct ForwardEnv<'a> {
    pub topo: &'a Topology,
    pub bgp: &'a BgpSim,
    /// Nodes that currently drop all traffic (failed CDN sites). A packet
    /// arriving here — even one the FIB would "deliver" — is lost, exactly
    /// like a packet reaching a dead PEERING site.
    pub down: &'a [NodeId],
}

impl ForwardEnv<'_> {
    fn is_down(&self, n: NodeId) -> bool {
        self.down.contains(&n)
    }
}

/// Outcome of forwarding one packet toward a destination address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// The packet reached a node that locally originates the matched
    /// prefix (for CDN prefixes: a live site).
    Delivered {
        node: NodeId,
        hops: usize,
        latency: SimDuration,
    },
    /// Some router on the path had no route at all.
    Blackhole { at: NodeId, hops: usize },
    /// The packet revisited a router: a forwarding loop (stale routes
    /// pointing at each other during convergence). Real packets die by TTL.
    Loop { at: NodeId, hops: usize },
    /// The packet arrived at a node marked down (the failed site).
    DeadNode { at: NodeId, hops: usize },
    /// The FIB pointed across a failed link (hold timer not yet expired):
    /// the packet is dropped at the interface.
    DeadLink { at: NodeId, hops: usize },
}

impl Delivery {
    /// Did the packet arrive at a live origin?
    pub fn delivered_to(&self) -> Option<NodeId> {
        match self {
            Delivery::Delivered { node, .. } => Some(*node),
            _ => None,
        }
    }
}

/// Forwards a packet from `from` toward `dst`, following each node's
/// current FIB. Returns where (and whether) it arrived.
pub fn walk(env: &ForwardEnv<'_>, from: NodeId, dst: Ipv4Net) -> Delivery {
    walk_inner(env, from, dst, None)
}

/// Like [`walk`], but also returns the node path traversed (including the
/// source and the final node). Used by the Appendix C.1 divergence
/// analysis, which compares AS-level paths the way reverse traceroute does.
pub fn walk_with_path(env: &ForwardEnv<'_>, from: NodeId, dst: Ipv4Net) -> (Delivery, Vec<NodeId>) {
    let mut path = Vec::with_capacity(8);
    let d = walk_inner(env, from, dst, Some(&mut path));
    (d, path)
}

fn walk_inner(
    env: &ForwardEnv<'_>,
    from: NodeId,
    dst: Ipv4Net,
    mut record: Option<&mut Vec<NodeId>>,
) -> Delivery {
    let mut node = from;
    let mut hops = 0usize;
    let mut latency = SimDuration::ZERO;
    // Visited set for loop detection; paths are short so a vec scan beats
    // hashing.
    let mut visited: Vec<NodeId> = Vec::with_capacity(8);
    loop {
        if let Some(rec) = record.as_deref_mut() {
            rec.push(node);
        }
        if env.is_down(node) {
            return Delivery::DeadNode { at: node, hops };
        }
        if visited.contains(&node) {
            return Delivery::Loop { at: node, hops };
        }
        visited.push(node);
        match env.bgp.fib_lookup(node, dst) {
            None => return Delivery::Blackhole { at: node, hops },
            Some((_, NextHop::Local)) => {
                return Delivery::Delivered {
                    node,
                    hops,
                    latency,
                }
            }
            Some((_, NextHop::Via(next))) => {
                if !env.bgp.link_is_up(node, next) {
                    return Delivery::DeadLink { at: node, hops };
                }
                let link = env
                    .topo
                    .delay(node, next)
                    .expect("FIB next hop must be a neighbor");
                latency += link;
                node = next;
                hops += 1;
                if hops > MAX_HOPS {
                    return Delivery::Loop { at: node, hops };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_bgp::{BgpTimingConfig, OriginConfig, Standalone};
    use bobw_event::RngFactory;
    use bobw_net::{Asn, Prefix};
    use bobw_topology::{NodeKind, Topology, REGIONS};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// t1 provides mid and leaf2; mid provides leaf.
    fn chain() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let c = REGIONS[0].center;
        let t1 = t.add_node(Asn(10), NodeKind::Tier1, c, 0);
        let mid = t.add_node(Asn(20), NodeKind::Transit, c, 0);
        let leaf = t.add_node(Asn(30), NodeKind::Stub, c, 0);
        let leaf2 = t.add_node(Asn(40), NodeKind::Stub, c, 0);
        t.link_provider_customer(t1, mid);
        t.link_provider_customer(mid, leaf);
        t.link_provider_customer(t1, leaf2);
        (t, t1, mid, leaf, leaf2)
    }

    fn converged(topo: &Topology, origin: NodeId, prefix: Prefix) -> Standalone {
        let rng = RngFactory::new(1);
        let mut s = Standalone::new(topo, BgpTimingConfig::instant(), &rng);
        s.announce(origin, prefix, OriginConfig::plain());
        s.run_to_idle(1_000_000);
        s
    }

    #[test]
    fn delivers_across_hops_with_latency() {
        let (topo, _t1, _mid, leaf, leaf2) = chain();
        let pre = p("184.164.244.0/24");
        let s = converged(&topo, leaf, pre);
        let env = ForwardEnv {
            topo: &topo,
            bgp: s.sim(),
            down: &[],
        };
        match walk(&env, leaf2, pre.addr_at(10)) {
            Delivery::Delivered {
                node,
                hops,
                latency,
            } => {
                assert_eq!(node, leaf);
                assert_eq!(hops, 3); // leaf2 -> t1 -> mid -> leaf
                assert!(latency > SimDuration::ZERO);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn walk_with_path_records_route() {
        let (topo, t1, mid, leaf, leaf2) = chain();
        let pre = p("184.164.244.0/24");
        let s = converged(&topo, leaf, pre);
        let env = ForwardEnv {
            topo: &topo,
            bgp: s.sim(),
            down: &[],
        };
        let (d, path) = walk_with_path(&env, leaf2, pre.addr_at(1));
        assert!(matches!(d, Delivery::Delivered { .. }));
        assert_eq!(path, vec![leaf2, t1, mid, leaf]);
    }

    #[test]
    fn blackhole_when_no_route() {
        let (topo, _, _, leaf, leaf2) = chain();
        let pre = p("184.164.244.0/24");
        let s = converged(&topo, leaf, pre);
        let env = ForwardEnv {
            topo: &topo,
            bgp: s.sim(),
            down: &[],
        };
        // An address outside any announced prefix dies at the source.
        match walk(&env, leaf2, p("9.9.9.0/24").addr_at(1)) {
            Delivery::Blackhole { at, hops } => {
                assert_eq!(at, leaf2);
                assert_eq!(hops, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dead_site_swallows_packets() {
        let (topo, _, _, leaf, leaf2) = chain();
        let pre = p("184.164.244.0/24");
        let s = converged(&topo, leaf, pre);
        // Mark the origin down without withdrawing: packets still routed
        // there (FIBs unchanged) but die on arrival — the instant after a
        // site failure, before any BGP reaction.
        let down = [leaf];
        let env = ForwardEnv {
            topo: &topo,
            bgp: s.sim(),
            down: &down,
        };
        match walk(&env, leaf2, pre.addr_at(1)) {
            Delivery::DeadNode { at, .. } => assert_eq!(at, leaf),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn source_down_immediately_dead() {
        let (topo, _, _, leaf, leaf2) = chain();
        let pre = p("184.164.244.0/24");
        let s = converged(&topo, leaf, pre);
        let down = [leaf2];
        let env = ForwardEnv {
            topo: &topo,
            bgp: s.sim(),
            down: &down,
        };
        assert!(matches!(
            walk(&env, leaf2, pre.addr_at(1)),
            Delivery::DeadNode { .. }
        ));
    }

    #[test]
    fn delivery_accessor() {
        let d = Delivery::Delivered {
            node: NodeId(3),
            hops: 2,
            latency: SimDuration::ZERO,
        };
        assert_eq!(d.delivered_to(), Some(NodeId(3)));
        assert_eq!(
            Delivery::Blackhole {
                at: NodeId(1),
                hops: 0
            }
            .delivered_to(),
            None
        );
    }
}
