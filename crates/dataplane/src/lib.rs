//! # bobw-dataplane
//!
//! The data plane of the *Best of Both Worlds* simulator: hop-by-hop packet
//! forwarding over the BGP FIBs, anycast catchment computation, path RTT,
//! and a Verfploeter-style prober.
//!
//! The paper measures availability on the data plane: after emulating a
//! site failure it pings every controllable target every ~1.5 s for ~600 s
//! and records at which site (if any) each reply arrives (§5.2). This crate
//! reproduces that instrument:
//!
//! * [`forward::walk`] follows each node's longest-prefix-match FIB entry
//!   hop by hop, so packets die in exactly the ways BGP convergence lets
//!   them die — blackholed at a router with no route, looping between
//!   routers holding mutually stale routes, or arriving at a failed site.
//! * [`probe`] implements the paper's probing protocol, including sequence
//!   numbers (to detect disconnection) and the per-site capture logs that
//!   stand in for `tcpdump`.
//! * [`mod@catchment`] computes which site each client AS reaches — the basis
//!   of the paper's target selection ("not routed to the site by anycast")
//!   and Table 1's traffic-control percentages.

pub mod capture;
pub mod catchment;
pub mod forward;
pub mod packet;
pub mod probe;

pub use capture::SiteCapture;
pub use catchment::{catchment, rtt_to_site};
pub use forward::{walk, walk_with_path, Delivery, ForwardEnv};
pub use packet::{internet_checksum, IcmpEcho, PacketError, ETHICS_PAYLOAD};
pub use probe::{probe_once, probe_path, ProbeConfig, ProbeLog, ProbeOutcome, ProbeRecord};
