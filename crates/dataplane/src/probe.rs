//! The Verfploeter-style prober (§5.2).
//!
//! After a failure the paper sends a ping to every controllable target
//! every ~1.5 s for ~600 s *from a surviving PEERING site*, with the source
//! address inside the failed site's prefix, so each reply is routed by the
//! Internet toward whatever currently announces that prefix. Sequence
//! numbers match replies to requests and expose disconnection gaps.
//!
//! This module holds the probing configuration, the single-probe data-plane
//! evaluation, and the per-target result log. The composite experiment loop
//! in `bobw-core` schedules the probe events.

use bobw_event::{SimDuration, SimTime};
use bobw_net::{Ipv4Net, NodeId};
use bobw_topology::{propagation_delay, CdnDeployment, SiteId, Topology};
use serde::{Deserialize, Serialize};

use crate::forward::{walk, Delivery, ForwardEnv};

/// Probing parameters; defaults mirror the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeConfig {
    /// Inter-probe interval per target (paper: ~1.5 s).
    pub interval: SimDuration,
    /// Probing window after the failure (paper: ~600 s).
    pub duration: SimDuration,
    /// Host offset inside the probed prefix used as the source address
    /// (the paper uses 184.164.244.10, offset 10).
    pub source_offset: u32,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            interval: SimDuration::from_millis(1500),
            duration: SimDuration::from_secs(600),
            source_offset: 10,
        }
    }
}

impl ProbeConfig {
    /// A shortened window for tests and quick benches.
    pub fn quick() -> ProbeConfig {
        ProbeConfig {
            interval: SimDuration::from_millis(1500),
            duration: SimDuration::from_secs(120),
            source_offset: 10,
        }
    }

    /// Number of probes each target receives.
    pub fn probes_per_target(&self) -> u32 {
        (self.duration.as_nanos() / self.interval.as_nanos().max(1)) as u32
    }
}

/// What happened to one probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeOutcome {
    /// The reply arrived at a live site at the given time.
    Received { site: SiteId, at: SimTime },
    /// The reply was lost (blackhole, loop, or dead site).
    Lost,
}

impl ProbeOutcome {
    pub fn site(&self) -> Option<SiteId> {
        match self {
            ProbeOutcome::Received { site, .. } => Some(*site),
            ProbeOutcome::Lost => None,
        }
    }
}

/// One probe's record in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeRecord {
    pub seq: u32,
    pub sent: SimTime,
    pub outcome: ProbeOutcome,
}

/// Per-target probe results for one failover experiment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProbeLog {
    records: Vec<Vec<ProbeRecord>>,
}

impl ProbeLog {
    pub fn new(num_targets: usize) -> ProbeLog {
        ProbeLog {
            records: vec![Vec::new(); num_targets],
        }
    }

    pub fn push(&mut self, target: usize, rec: ProbeRecord) {
        self.records[target].push(rec);
    }

    /// Probe records of one target, in send order.
    pub fn for_target(&self, target: usize) -> &[ProbeRecord] {
        &self.records[target]
    }

    pub fn num_targets(&self) -> usize {
        self.records.len()
    }

    /// Fraction of probes (across all targets) that were answered.
    pub fn response_rate(&self) -> f64 {
        let mut total = 0usize;
        let mut ok = 0usize;
        for t in &self.records {
            total += t.len();
            ok += t
                .iter()
                .filter(|r| matches!(r.outcome, ProbeOutcome::Received { .. }))
                .count();
        }
        if total == 0 {
            0.0
        } else {
            ok as f64 / total as f64
        }
    }
}

/// Evaluates one probe at simulated time `now`.
///
/// The request travels `prober_site → target` (assumed deliverable — the
/// paper pre-selects responsive targets); the reply is forwarded by the
/// FIBs from `target` toward `reply_dst` (an address in the failed site's
/// prefix). The reply's arrival time accounts for the request leg
/// (geographic) plus the reply path latency.
pub fn probe_once(
    env: &ForwardEnv<'_>,
    cdn: &CdnDeployment,
    topo: &Topology,
    prober_site: NodeId,
    target: NodeId,
    reply_dst: Ipv4Net,
    now: SimTime,
) -> ProbeOutcome {
    match probe_path(env, cdn, topo, prober_site, target, reply_dst) {
        Some((site, delay)) => ProbeOutcome::Received {
            site,
            at: now + delay,
        },
        None => ProbeOutcome::Lost,
    }
}

/// The time-independent part of [`probe_once`]: which site answers and the
/// total request+reply delay, or `None` when the probe is lost. A pure
/// function of FIB and session state — callers may memoize the result
/// keyed on [`BgpSim::state_version`](bobw_bgp::BgpSim::state_version)
/// and recover `probe_once`'s answer as `now + delay`.
pub fn probe_path(
    env: &ForwardEnv<'_>,
    cdn: &CdnDeployment,
    topo: &Topology,
    prober_site: NodeId,
    target: NodeId,
    reply_dst: Ipv4Net,
) -> Option<(SiteId, SimDuration)> {
    let request_leg = propagation_delay(
        topo.node(prober_site)
            .coords
            .distance_km(&topo.node(target).coords),
    );
    match walk(env, target, reply_dst) {
        Delivery::Delivered { node, latency, .. } => cdn
            .site_at(node)
            // Delivered to a non-site origin (not a CDN prefix): treat as
            // lost from the experiment's point of view.
            .map(|site| (site, request_leg + latency)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_bgp::{BgpTimingConfig, OriginConfig, Standalone};
    use bobw_event::RngFactory;
    use bobw_net::Prefix;
    use bobw_topology::{generate, GenConfig};

    #[test]
    fn default_matches_paper() {
        let c = ProbeConfig::default();
        assert_eq!(c.interval, SimDuration::from_millis(1500));
        assert_eq!(c.duration, SimDuration::from_secs(600));
        assert_eq!(c.probes_per_target(), 400);
        assert_eq!(c.source_offset, 10);
    }

    #[test]
    fn probe_round_trip_on_converged_network() {
        let rng = RngFactory::new(7);
        let (topo, cdn) = generate(&GenConfig::tiny(), &rng);
        let prefix: Prefix = "184.164.244.0/24".parse().unwrap();
        let ams = cdn.by_name("ams").unwrap();
        let bos = cdn.by_name("bos").unwrap();
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        s.announce(cdn.node(ams), prefix, OriginConfig::plain());
        s.run_to_idle(10_000_000);
        let env = ForwardEnv {
            topo: &topo,
            bgp: s.sim(),
            down: &[],
        };
        let target = topo.client_nodes().next().unwrap();
        let now = SimTime::from_secs(100);
        let out = probe_once(
            &env,
            &cdn,
            &topo,
            cdn.node(bos),
            target,
            prefix.addr_at(10),
            now,
        );
        match out {
            ProbeOutcome::Received { site, at } => {
                assert_eq!(site, ams);
                assert!(at > now, "arrival must be after send");
            }
            ProbeOutcome::Lost => panic!("probe lost on a converged network"),
        }
    }

    #[test]
    fn probe_lost_when_site_down() {
        let rng = RngFactory::new(7);
        let (topo, cdn) = generate(&GenConfig::tiny(), &rng);
        let prefix: Prefix = "184.164.244.0/24".parse().unwrap();
        let ams = cdn.by_name("ams").unwrap();
        let bos = cdn.by_name("bos").unwrap();
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        s.announce(cdn.node(ams), prefix, OriginConfig::plain());
        s.run_to_idle(10_000_000);
        // Site down, routes not yet withdrawn: every reply dies at the site.
        let down = [cdn.node(ams)];
        let env = ForwardEnv {
            topo: &topo,
            bgp: s.sim(),
            down: &down,
        };
        let target = topo.client_nodes().next().unwrap();
        let out = probe_once(
            &env,
            &cdn,
            &topo,
            cdn.node(bos),
            target,
            prefix.addr_at(10),
            SimTime::ZERO,
        );
        assert_eq!(out, ProbeOutcome::Lost);
    }

    #[test]
    fn log_bookkeeping() {
        let mut log = ProbeLog::new(2);
        log.push(
            0,
            ProbeRecord {
                seq: 0,
                sent: SimTime::ZERO,
                outcome: ProbeOutcome::Lost,
            },
        );
        log.push(
            0,
            ProbeRecord {
                seq: 1,
                sent: SimTime::from_secs(2),
                outcome: ProbeOutcome::Received {
                    site: SiteId(1),
                    at: SimTime::from_secs(2),
                },
            },
        );
        assert_eq!(log.num_targets(), 2);
        assert_eq!(log.for_target(0).len(), 2);
        assert!(log.for_target(1).is_empty());
        assert!((log.response_rate() - 0.5).abs() < 1e-12);
        assert_eq!(log.for_target(0)[1].outcome.site(), Some(SiteId(1)));
        assert_eq!(log.for_target(0)[0].outcome.site(), None);
    }

    #[test]
    fn empty_log_rate_is_zero() {
        assert_eq!(ProbeLog::new(3).response_rate(), 0.0);
    }
}
