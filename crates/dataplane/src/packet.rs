//! ICMP echo packet encoding — the bits Verfploeter actually puts on the
//! wire.
//!
//! The paper's probing protocol (§5.2–5.3) needs three things from its
//! packets: a unique sequence number per probe (to match replies and detect
//! disconnection), an identifier tying replies to the measurement, and an
//! ethics payload ("in the payload of our ping requests, we included a link
//! to a web page with details on our experiment and contact information to
//! opt out"). This module builds and parses those packets, checksum
//! included, so captures can be inspected byte-for-byte.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// ICMP type for echo request.
pub const ICMP_ECHO_REQUEST: u8 = 8;
/// ICMP type for echo reply.
pub const ICMP_ECHO_REPLY: u8 = 0;

/// The §5.3 ethics payload embedded in every probe.
pub const ETHICS_PAYLOAD: &str =
    "bobw measurement study - details & opt-out: https://bobw.example/optout";

/// A parsed ICMP echo message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpEcho {
    /// `ICMP_ECHO_REQUEST` or `ICMP_ECHO_REPLY`.
    pub icmp_type: u8,
    /// Measurement identifier (one per experiment run).
    pub ident: u16,
    /// Probe sequence number.
    pub seq: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Errors from [`IcmpEcho::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// Fewer than the 8 header bytes.
    Truncated,
    /// Checksum mismatch (corrupted in flight).
    BadChecksum,
    /// Not an echo request/reply.
    NotEcho(u8),
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::Truncated => write!(f, "packet shorter than the ICMP header"),
            PacketError::BadChecksum => write!(f, "ICMP checksum mismatch"),
            PacketError::NotEcho(t) => write!(f, "ICMP type {t} is not an echo message"),
        }
    }
}

impl std::error::Error for PacketError {}

/// RFC 1071 Internet checksum over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

impl IcmpEcho {
    /// Builds a probe request with the measurement id, sequence number and
    /// the ethics payload.
    pub fn request(ident: u16, seq: u16) -> IcmpEcho {
        IcmpEcho {
            icmp_type: ICMP_ECHO_REQUEST,
            ident,
            seq,
            payload: Bytes::from_static(ETHICS_PAYLOAD.as_bytes()),
        }
    }

    /// The reply a target generates for this request (same id/seq/payload).
    pub fn reply(&self) -> IcmpEcho {
        IcmpEcho {
            icmp_type: ICMP_ECHO_REPLY,
            ident: self.ident,
            seq: self.seq,
            payload: self.payload.clone(),
        }
    }

    /// Serializes with a correct checksum.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.payload.len());
        buf.put_u8(self.icmp_type);
        buf.put_u8(0); // code
        buf.put_u16(0); // checksum placeholder
        buf.put_u16(self.ident);
        buf.put_u16(self.seq);
        buf.put_slice(&self.payload);
        let csum = internet_checksum(&buf);
        buf[2..4].copy_from_slice(&csum.to_be_bytes());
        buf.freeze()
    }

    /// Parses and verifies a packet.
    pub fn decode(mut data: Bytes) -> Result<IcmpEcho, PacketError> {
        if data.len() < 8 {
            return Err(PacketError::Truncated);
        }
        if internet_checksum(&data) != 0 {
            return Err(PacketError::BadChecksum);
        }
        let icmp_type = data.get_u8();
        let _code = data.get_u8();
        let _checksum = data.get_u16();
        if icmp_type != ICMP_ECHO_REQUEST && icmp_type != ICMP_ECHO_REPLY {
            return Err(PacketError::NotEcho(icmp_type));
        }
        let ident = data.get_u16();
        let seq = data.get_u16();
        Ok(IcmpEcho {
            icmp_type,
            ident,
            seq,
            payload: data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_reply_round_trip() {
        let req = IcmpEcho::request(0xbeef, 42);
        let bytes = req.encode();
        let parsed = IcmpEcho::decode(bytes).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.icmp_type, ICMP_ECHO_REQUEST);
        assert_eq!(parsed.seq, 42);
        assert_eq!(parsed.ident, 0xbeef);
        let reply = parsed.reply();
        assert_eq!(reply.icmp_type, ICMP_ECHO_REPLY);
        assert_eq!(reply.seq, 42);
        let parsed_reply = IcmpEcho::decode(reply.encode()).unwrap();
        assert_eq!(parsed_reply, reply);
    }

    #[test]
    fn ethics_payload_is_present() {
        let req = IcmpEcho::request(1, 1);
        let bytes = req.encode();
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.contains("opt-out") || text.contains("optout"));
        assert!(
            req.payload.len() * 8 < 1000,
            "payload stays small (<100 B/s average per target, §5.3)"
        );
    }

    #[test]
    fn checksum_validates_and_detects_corruption() {
        let req = IcmpEcho::request(7, 9);
        let bytes = req.encode();
        assert_eq!(internet_checksum(&bytes), 0, "valid packet sums to zero");
        let mut corrupted = bytes.to_vec();
        corrupted[9] ^= 0x40;
        assert_eq!(
            IcmpEcho::decode(Bytes::from(corrupted)),
            Err(PacketError::BadChecksum)
        );
    }

    #[test]
    fn truncated_and_wrong_type_rejected() {
        assert_eq!(
            IcmpEcho::decode(Bytes::from_static(&[8, 0, 0])),
            Err(PacketError::Truncated)
        );
        // A destination-unreachable (type 3) with a valid checksum.
        let mut raw = vec![3u8, 0, 0, 0, 0, 0, 0, 0];
        let csum = internet_checksum(&raw);
        raw[2..4].copy_from_slice(&csum.to_be_bytes());
        assert_eq!(
            IcmpEcho::decode(Bytes::from(raw)),
            Err(PacketError::NotEcho(3))
        );
    }

    #[test]
    fn checksum_odd_length() {
        // Odd payload exercises the trailing-byte path.
        let pkt = IcmpEcho {
            icmp_type: ICMP_ECHO_REQUEST,
            ident: 1,
            seq: 2,
            payload: Bytes::from_static(b"odd"),
        };
        let decoded = IcmpEcho::decode(pkt.encode()).unwrap();
        assert_eq!(decoded.payload.as_ref(), b"odd");
    }

    #[test]
    fn rfc1071_reference_vector() {
        // Classic example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
    }
}
