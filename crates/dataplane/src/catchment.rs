//! Anycast catchment and path-RTT computation.
//!
//! The paper's target selection (§5.1) needs two data-plane facts per
//! ⟨client, site⟩ pair: the round-trip latency to the site (keep clients
//! within 50 ms) and which site anycast routes the client to (evaluate
//! control only on clients anycast sends *elsewhere*).

use bobw_event::SimDuration;
use bobw_net::{Ipv4Net, NodeId};
use bobw_topology::{CdnDeployment, SiteId};

use crate::forward::{walk, Delivery, ForwardEnv};

/// Which site does `client`'s traffic toward `dst` reach under the current
/// FIBs? `None` if the packet is lost or arrives at a non-site node.
pub fn catchment(
    env: &ForwardEnv<'_>,
    cdn: &CdnDeployment,
    client: NodeId,
    dst: Ipv4Net,
) -> Option<SiteId> {
    walk(env, client, dst)
        .delivered_to()
        .and_then(|node| cdn.site_at(node))
}

/// Round-trip time from `client` to whatever currently serves `dst`,
/// measured along the actual forwarding path (one-way path latency × 2,
/// symmetric-path approximation). `None` if undeliverable.
pub fn rtt_to_site(env: &ForwardEnv<'_>, client: NodeId, dst: Ipv4Net) -> Option<SimDuration> {
    match walk(env, client, dst) {
        Delivery::Delivered { latency, .. } => Some(latency.saturating_mul(2)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_bgp::{BgpTimingConfig, OriginConfig, Standalone};
    use bobw_event::RngFactory;
    use bobw_net::Prefix;
    use bobw_topology::{generate, GenConfig};

    #[test]
    fn anycast_catchment_covers_every_client() {
        let rng = RngFactory::new(5);
        let (topo, cdn) = generate(&GenConfig::tiny(), &rng);
        let prefix: Prefix = "184.164.244.0/24".parse().unwrap();
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        for &site in cdn.site_nodes() {
            s.announce(site, prefix, OriginConfig::plain());
        }
        s.run_to_idle(10_000_000);
        let env = ForwardEnv {
            topo: &topo,
            bgp: s.sim(),
            down: &[],
        };
        let mut per_site = vec![0usize; cdn.num_sites()];
        for client in topo.client_nodes() {
            let site = catchment(&env, &cdn, client, prefix.addr_at(1))
                .unwrap_or_else(|| panic!("client {client} unreachable under anycast"));
            per_site[site.index()] += 1;
            // RTT must be measurable for every reachable client.
            assert!(rtt_to_site(&env, client, prefix.addr_at(1)).is_some());
        }
        // Anycast must split clients across more than one site.
        let nonempty = per_site.iter().filter(|c| **c > 0).count();
        assert!(nonempty >= 2, "catchment degenerate: {per_site:?}");
    }

    #[test]
    fn unicast_catchment_is_single_site() {
        let rng = RngFactory::new(5);
        let (topo, cdn) = generate(&GenConfig::tiny(), &rng);
        let prefix: Prefix = "184.164.244.0/24".parse().unwrap();
        let ams = cdn.by_name("ams").unwrap();
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        s.announce(cdn.node(ams), prefix, OriginConfig::plain());
        s.run_to_idle(10_000_000);
        let env = ForwardEnv {
            topo: &topo,
            bgp: s.sim(),
            down: &[],
        };
        for client in topo.client_nodes() {
            assert_eq!(
                catchment(&env, &cdn, client, prefix.addr_at(1)),
                Some(ams),
                "unicast must route every client to the announcing site"
            );
        }
    }

    #[test]
    fn nearby_clients_have_lower_rtt() {
        let rng = RngFactory::new(5);
        let (topo, cdn) = generate(&GenConfig::tiny(), &rng);
        let prefix: Prefix = "184.164.244.0/24".parse().unwrap();
        let ams = cdn.by_name("ams").unwrap();
        let mut s = Standalone::new(&topo, BgpTimingConfig::instant(), &rng);
        s.announce(cdn.node(ams), prefix, OriginConfig::plain());
        s.run_to_idle(10_000_000);
        let env = ForwardEnv {
            topo: &topo,
            bgp: s.sim(),
            down: &[],
        };
        let site_coords = topo.node(cdn.node(ams)).coords;
        let mut near = Vec::new();
        let mut far = Vec::new();
        for client in topo.client_nodes() {
            let km = topo.node(client).coords.distance_km(&site_coords);
            if let Some(rtt) = rtt_to_site(&env, client, prefix.addr_at(1)) {
                if km < 1000.0 {
                    near.push(rtt.as_secs_f64());
                } else if km > 7000.0 {
                    far.push(rtt.as_secs_f64());
                }
            }
        }
        if !near.is_empty() && !far.is_empty() {
            let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            assert!(
                avg(&near) < avg(&far),
                "near {:.4} !< far {:.4}",
                avg(&near),
                avg(&far)
            );
        }
    }
}
