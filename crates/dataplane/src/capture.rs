//! Per-site capture logs — the simulator's `tcpdump`.
//!
//! The paper runs `tcpdump` at every PEERING site to record when and where
//! each ping reply lands (§5.2). [`SiteCapture`] is that instrument: an
//! append-only log of `(arrival time, target, sequence number)` per site.

use bobw_event::SimTime;
use bobw_topology::SiteId;
use serde::{Deserialize, Serialize};

/// One captured reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaptureEntry {
    pub at: SimTime,
    /// Index of the target in the experiment's target list.
    pub target: u32,
    /// Probe sequence number (matches request to reply, detects gaps).
    pub seq: u32,
}

/// Capture logs for every site of a deployment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SiteCapture {
    per_site: Vec<Vec<CaptureEntry>>,
}

impl SiteCapture {
    pub fn new(num_sites: usize) -> SiteCapture {
        SiteCapture {
            per_site: vec![Vec::new(); num_sites],
        }
    }

    /// Records a reply arriving at `site`.
    pub fn record(&mut self, site: SiteId, at: SimTime, target: u32, seq: u32) {
        self.per_site[site.index()].push(CaptureEntry { at, target, seq });
    }

    /// All replies captured at `site`, in arrival order.
    pub fn at_site(&self, site: SiteId) -> &[CaptureEntry] {
        &self.per_site[site.index()]
    }

    /// Total replies captured across all sites.
    pub fn total(&self) -> usize {
        self.per_site.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_site_in_order() {
        let mut cap = SiteCapture::new(3);
        let s0 = SiteId(0);
        let s2 = SiteId(2);
        cap.record(s0, SimTime::from_secs(1), 7, 0);
        cap.record(s2, SimTime::from_secs(2), 7, 1);
        cap.record(s0, SimTime::from_secs(3), 8, 0);
        assert_eq!(cap.at_site(s0).len(), 2);
        assert_eq!(cap.at_site(SiteId(1)).len(), 0);
        assert_eq!(cap.at_site(s2).len(), 1);
        assert_eq!(cap.total(), 3);
        assert_eq!(cap.at_site(s0)[0].seq, 0);
        assert_eq!(cap.at_site(s0)[1].target, 8);
        assert!(cap.at_site(s0)[0].at < cap.at_site(s0)[1].at);
    }
}
