//! Traffic-layer configuration.

use bobw_topology::REGIONS;
use serde::{Deserialize, Serialize};

/// Per-region capacity asymmetry: every site in `region` gets its
/// provisioned capacity multiplied by `factor` on top of the global
/// `capacity_headroom`. Real deployments are not uniformly provisioned —
/// a flagship metro may carry 2× the fair-share capacity while an edge
/// region runs lean — and the asymmetry decides whether a regional
/// failover cascades (the lean neighbors overflow in turn) or absorbs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionCapacity {
    /// A region name from the topology generator's region table.
    pub region: String,
    /// Multiplier applied to the sites' fair-share capacity (> 0).
    pub factor: f64,
}

/// Knobs of the demand/capacity/controller model. Carried inside
/// `ExperimentConfig` (as `traffic: Option<TrafficConfig>`) and across the
/// distributed-dispatch wire, so every field must be deterministic data —
/// no handles, no host state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Per-site capacity as a multiple of the fair share of total base
    /// demand (`capacity = headroom × total / num_sites`). Sinha et al.'s
    /// provisioning knob: low headroom makes catchment shifts cascade.
    pub capacity_headroom: f64,
    /// The controller packs demand to at most this fraction of each
    /// site's capacity (the "weighted DNS" utilization ceiling).
    pub utilization_ceiling: f64,
    /// Demand-sampling tick interval, seconds of simulated time.
    pub tick_interval_s: f64,
    /// The DNS-weight controller runs every `control_every` ticks.
    pub control_every: u32,
    /// DNS record TTL for controller re-steers: a moved client adopts its
    /// new site a uniform-random fraction of this many seconds later
    /// (clients re-resolve when their cached record expires).
    pub resteer_ttl_s: f64,
    /// Diurnal modulation amplitude (0 = flat demand).
    pub diurnal_amplitude: f64,
    /// Diurnal period in seconds. The default compresses a "day" into an
    /// hour so the curve is visible within a 600 s probing window.
    pub diurnal_period_s: f64,
    /// Per-region capacity overrides (empty = uniform provisioning, the
    /// pre-existing behavior). See [`RegionCapacity`].
    pub region_capacity: Vec<RegionCapacity>,
}

impl Default for TrafficConfig {
    fn default() -> TrafficConfig {
        TrafficConfig {
            capacity_headroom: 1.6,
            utilization_ceiling: 0.9,
            tick_interval_s: 10.0,
            control_every: 3,
            resteer_ttl_s: 30.0,
            diurnal_amplitude: 0.2,
            diurnal_period_s: 3600.0,
            region_capacity: Vec::new(),
        }
    }
}

impl TrafficConfig {
    /// Structural sanity check; bench binaries call this before running.
    pub fn validate(&self) -> Result<(), String> {
        let pos = [
            ("capacity_headroom", self.capacity_headroom),
            ("utilization_ceiling", self.utilization_ceiling),
            ("tick_interval_s", self.tick_interval_s),
            ("diurnal_period_s", self.diurnal_period_s),
        ];
        for (name, v) in pos {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be finite and > 0, got {v}"));
            }
        }
        for (name, v) in [
            ("resteer_ttl_s", self.resteer_ttl_s),
            ("diurnal_amplitude", self.diurnal_amplitude),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and >= 0, got {v}"));
            }
        }
        if self.control_every == 0 {
            return Err("control_every must be >= 1".to_string());
        }
        for rc in &self.region_capacity {
            if REGIONS.iter().all(|r| r.name != rc.region) {
                return Err(format!("region_capacity: unknown region {:?}", rc.region));
            }
            if !rc.factor.is_finite() || rc.factor <= 0.0 {
                return Err(format!(
                    "region_capacity[{}]: factor must be finite and > 0, got {}",
                    rc.region, rc.factor
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_round_trips() {
        let cfg = TrafficConfig::default();
        cfg.validate().unwrap();
        let text = serde_json::to_string(&cfg).unwrap();
        let back: TrafficConfig = serde_json::from_str_typed(&text).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let cfg = TrafficConfig {
            tick_interval_s: 0.0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = TrafficConfig {
            control_every: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = TrafficConfig {
            diurnal_amplitude: f64::NAN,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }
}
