//! Time-varying demand: the static [`LoadModel`] sample modulated by a
//! diurnal curve, flash-crowd surges, and permanent regional shifts.
//!
//! Everything here is a pure function of ⟨seed, config, event schedule⟩:
//! the base sample draws from the same `"load-demand"` RNG streams the
//! static model always used, and the modulations are closed-form in
//! simulated time — so two processes of a distributed run evaluating the
//! same tick get bit-identical demand.

use bobw_event::RngFactory;
use bobw_net::NodeId;
use bobw_topology::{Topology, REGIONS};
use serde::{Deserialize, Serialize};

use crate::assign::LoadModel;
use crate::config::TrafficConfig;

/// A transient demand surge (flash crowd / volumetric attack): demand in
/// scope ramps linearly from 1× to `factor`× over `ramp_s`, holds until
/// `start_s + duration_s`, then ramps back down over another `ramp_s`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Surge {
    /// Region index into [`REGIONS`], or `None` for a global surge.
    pub region: Option<usize>,
    pub factor: f64,
    pub start_s: f64,
    pub ramp_s: f64,
    pub duration_s: f64,
}

impl Surge {
    /// The multiplicative factor this surge applies at time `t` (seconds).
    pub fn factor_at(&self, t: f64) -> f64 {
        let since = t - self.start_s;
        if since < 0.0 || since >= self.duration_s + self.ramp_s {
            return 1.0;
        }
        let gain = self.factor - 1.0;
        if since < self.ramp_s {
            // Ramp up (ramp_s = 0 jumps straight to the plateau).
            1.0 + gain * (since / self.ramp_s.max(f64::MIN_POSITIVE)).min(1.0)
        } else if since < self.duration_s {
            self.factor
        } else {
            // Ramp down past the plateau's end.
            let fall = (since - self.duration_s) / self.ramp_s.max(f64::MIN_POSITIVE);
            1.0 + gain * (1.0 - fall.min(1.0))
        }
    }

    fn applies_to(&self, region: usize) -> bool {
        self.region.is_none() || self.region == Some(region)
    }
}

struct DemandEntry {
    node: NodeId,
    base: f64,
    region: usize,
}

/// Per-client time-varying demand.
pub struct DemandModel {
    entries: Vec<DemandEntry>,
    diurnal_amplitude: f64,
    diurnal_period_s: f64,
    /// Permanent multiplicative factor per [`REGIONS`] index
    /// (`DemandShift` events compose multiplicatively).
    region_factor: Vec<f64>,
    surges: Vec<Surge>,
}

impl DemandModel {
    /// Samples the base population — byte-identical to
    /// [`LoadModel::sample`] (same streams, same parameters) — and wires
    /// in the config's diurnal curve.
    pub fn sample(topo: &Topology, rng: &RngFactory, cfg: &TrafficConfig) -> DemandModel {
        let base = LoadModel::sample(topo, rng);
        let entries = base
            .demands()
            .iter()
            .map(|&(node, d)| DemandEntry {
                node,
                base: d,
                region: topo.node(node).region,
            })
            .collect();
        DemandModel {
            entries,
            diurnal_amplitude: cfg.diurnal_amplitude,
            diurnal_period_s: cfg.diurnal_period_s,
            region_factor: vec![1.0; REGIONS.len()],
            surges: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn node(&self, i: usize) -> NodeId {
        self.entries[i].node
    }

    pub fn base(&self, i: usize) -> f64 {
        self.entries[i].base
    }

    /// Index of a client node in this model, if it hosts demand.
    pub fn index_of(&self, node: NodeId) -> Option<usize> {
        self.entries.iter().position(|e| e.node == node)
    }

    pub fn total_base(&self) -> f64 {
        self.entries.iter().map(|e| e.base).sum()
    }

    pub fn add_surge(&mut self, surge: Surge) {
        self.surges.push(surge);
    }

    /// Permanently scales a region's demand (composes multiplicatively
    /// with previous shifts).
    pub fn shift_region(&mut self, region: usize, factor: f64) {
        self.region_factor[region] *= factor;
    }

    fn diurnal(&self, t: f64) -> f64 {
        if self.diurnal_amplitude == 0.0 {
            return 1.0;
        }
        1.0 + self.diurnal_amplitude
            * (2.0 * std::f64::consts::PI * t / self.diurnal_period_s).sin()
    }

    /// Client `i`'s demand at time `t` (seconds of simulated time).
    pub fn at(&self, i: usize, t: f64) -> f64 {
        let e = &self.entries[i];
        let mut d = e.base * self.diurnal(t) * self.region_factor[e.region];
        for s in &self.surges {
            if s.applies_to(e.region) {
                d *= s.factor_at(t);
            }
        }
        d
    }

    /// Total demand across clients at time `t`.
    pub fn total_at(&self, t: f64) -> f64 {
        (0..self.len()).map(|i| self.at(i, t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_topology::{generate, GenConfig};

    fn model(cfg: &TrafficConfig) -> DemandModel {
        let rng = RngFactory::new(8);
        let (topo, _) = generate(&GenConfig::small(), &rng);
        DemandModel::sample(&topo, &rng, cfg)
    }

    #[test]
    fn base_matches_the_static_load_model() {
        let rng = RngFactory::new(8);
        let (topo, _) = generate(&GenConfig::small(), &rng);
        let stat = LoadModel::sample(&topo, &rng);
        let dyn_ = DemandModel::sample(&topo, &rng, &TrafficConfig::default());
        assert_eq!(dyn_.len(), stat.demands().len());
        for (i, &(node, d)) in stat.demands().iter().enumerate() {
            assert_eq!(dyn_.node(i), node);
            assert_eq!(dyn_.base(i), d);
        }
        assert!((dyn_.total_base() - stat.total()).abs() < 1e-9);
    }

    #[test]
    fn diurnal_oscillates_around_base() {
        let cfg = TrafficConfig {
            diurnal_amplitude: 0.5,
            diurnal_period_s: 100.0,
            ..Default::default()
        };
        let m = model(&cfg);
        let base = m.base(0);
        assert!((m.at(0, 0.0) - base).abs() < 1e-9, "sin(0) = 0");
        assert!(m.at(0, 25.0) > base * 1.49, "peak at quarter period");
        assert!(m.at(0, 75.0) < base * 0.51, "trough at three quarters");
    }

    #[test]
    fn surge_ramps_plateaus_and_decays() {
        let s = Surge {
            region: None,
            factor: 4.0,
            start_s: 10.0,
            ramp_s: 10.0,
            duration_s: 30.0,
        };
        assert_eq!(s.factor_at(0.0), 1.0);
        assert_eq!(s.factor_at(10.0), 1.0);
        assert!((s.factor_at(15.0) - 2.5).abs() < 1e-9, "mid-ramp");
        assert_eq!(s.factor_at(20.0), 4.0);
        assert_eq!(s.factor_at(39.9), 4.0);
        assert!((s.factor_at(45.0) - 2.5).abs() < 1e-9, "mid-decay");
        assert_eq!(s.factor_at(50.0), 1.0);
        assert_eq!(s.factor_at(1000.0), 1.0);
    }

    #[test]
    fn zero_ramp_surge_is_a_step() {
        let s = Surge {
            region: None,
            factor: 3.0,
            start_s: 5.0,
            ramp_s: 0.0,
            duration_s: 10.0,
        };
        assert_eq!(s.factor_at(4.9), 1.0);
        assert_eq!(s.factor_at(5.0), 3.0);
        assert_eq!(s.factor_at(14.9), 3.0);
        assert_eq!(s.factor_at(15.0), 1.0);
    }

    #[test]
    fn regional_scopes_compose() {
        let cfg = TrafficConfig {
            diurnal_amplitude: 0.0,
            ..Default::default()
        };
        let mut m = model(&cfg);
        // Find a region that actually has clients.
        let region = (0..m.len()).map(|i| m.entries[i].region).next().unwrap();
        let i_in = (0..m.len())
            .find(|&i| m.entries[i].region == region)
            .unwrap();
        let other = (0..m.len()).find(|&i| m.entries[i].region != region);
        m.add_surge(Surge {
            region: Some(region),
            factor: 2.0,
            start_s: 0.0,
            ramp_s: 0.0,
            duration_s: 100.0,
        });
        m.shift_region(region, 1.5);
        assert!((m.at(i_in, 50.0) - m.base(i_in) * 3.0).abs() < 1e-9);
        if let Some(i_out) = other {
            assert!((m.at(i_out, 50.0) - m.base(i_out)).abs() < 1e-9);
        }
        // Surge over: only the permanent shift remains.
        assert!((m.at(i_in, 200.0) - m.base(i_in) * 1.5).abs() < 1e-9);
    }
}
