//! # bobw-traffic
//!
//! The demand-driven data plane: what the paper's §3 control argument is
//! *about*, made measurable. The probing layer (`bobw-dataplane`) answers
//! "can this client reach a site?"; this crate answers "what happens to
//! the *load* while it does" — per-client demand processes (heavy-tailed
//! populations, diurnal curves, flash-crowd surges), per-site capacity
//! with an overload model, and the load-aware redirection controller that
//! §3 argues only the CDN can run ("only the CDN has access to the
//! service availability, server load, and internal software and hardware
//! health information necessary to make the best redirection decisions").
//!
//! The reference dynamics to reproduce are Sinha et al.'s (*Distributed
//! Load Management in Anycast-based CDNs*): an anycast failover shifts a
//! failed site's whole catchment onto whichever neighbor BGP's economics
//! favor — an overload *cascade* — while DNS-weight shedding re-packs the
//! displaced demand within every site's capacity.
//!
//! Layering: the crate sits below `bobw-core` (which schedules
//! [`TrafficSim`] ticks on its event engine) and is strictly
//! *observational* with respect to probing — enabling traffic changes no
//! probe outcome, no BGP message, and no shared RNG stream, which is what
//! keeps `traffic: None` runs byte-identical to builds that predate the
//! subsystem.
//!
//! * [`assign`] — the static load snapshot (migrated from
//!   `bobw-core::load`): demand sampling, capacity-constrained greedy
//!   assignment, anycast catchment load.
//! * [`demand`] — time-varying demand: diurnal modulation, surges,
//!   regional demand shifts.
//! * [`sim`] — the per-experiment traffic simulation: tick accumulation,
//!   overload/shedding, and the periodic DNS-weight controller.

pub mod assign;
pub mod config;
pub mod demand;
pub mod sim;

pub use assign::{anycast_load, apply_to_dns, assign_load_aware, Assignment, LoadModel};
pub use config::{RegionCapacity, TrafficConfig};
pub use demand::{DemandModel, Surge};
pub use sim::{Steering, TrafficSim, TrafficSummary};
