//! Load-aware client-to-site mapping — the *other* half of the paper's
//! case for control. (Migrated from `bobw-core::load`; `bobw-core`
//! re-exports everything here for compatibility.)
//!
//! §3: "only the CDN has access to the service availability, server load,
//! and internal software and hardware health information necessary to make
//! the best redirection decisions"; §4 lists "better load distribution"
//! among the goals traffic control serves. This module implements the
//! mapping layer that exercises that control: per-client demand weights, a
//! capacity-constrained greedy assignment (nearest site with headroom),
//! and re-assignment after a site failure. The resulting assignment is
//! what the CDN's authoritative DNS hands out ([`apply_to_dns`]).
//!
//! Anycast, by contrast, assigns clients by BGP's economics with no notion
//! of load — [`anycast_load`] measures how unbalanced that is, which is
//! the `load_balance` example's punchline.

use std::collections::HashMap;

use bobw_dataplane::{catchment, ForwardEnv};
use bobw_dns::Authoritative;
use bobw_event::rng::lognormal;
use bobw_event::RngFactory;
use bobw_net::{Ipv4Net, NodeId};
use bobw_topology::{CdnDeployment, NodeKind, SiteId, Topology};
use serde::{Deserialize, Serialize};

/// Per-client traffic demand, in arbitrary load units.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadModel {
    demands: Vec<(NodeId, f64)>,
}

impl LoadModel {
    /// Samples demands: eyeball networks carry heavy, heavy-tailed demand
    /// (median 10, lognormal σ=1); stubs are light (median 1, σ=0.7).
    pub fn sample(topo: &Topology, rng: &RngFactory) -> LoadModel {
        let mut demands = Vec::new();
        for n in topo.nodes().filter(|n| n.kind.hosts_clients()) {
            let mut r = rng.stream("load-demand", n.id.index() as u64);
            let d = match n.kind {
                NodeKind::Eyeball => lognormal(&mut r, 10.0, 1.0),
                _ => lognormal(&mut r, 1.0, 0.7),
            };
            demands.push((n.id, d));
        }
        LoadModel { demands }
    }

    pub fn demands(&self) -> &[(NodeId, f64)] {
        &self.demands
    }

    pub fn total(&self) -> f64 {
        self.demands.iter().map(|(_, d)| *d).sum()
    }

    pub fn demand_of(&self, client: NodeId) -> Option<f64> {
        self.demands
            .iter()
            .find(|(n, _)| *n == client)
            .map(|(_, d)| *d)
    }
}

/// A capacity-constrained assignment of clients to sites.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Assignment {
    /// client → site; clients that could not be placed are absent.
    pub mapping: HashMap<NodeId, SiteId>,
    /// Load placed on each site.
    pub load: Vec<f64>,
    /// Demand that fit nowhere (all candidate sites full).
    pub unplaced: f64,
}

impl Assignment {
    /// Max/mean load ratio across sites with nonzero capacity — 1.0 is a
    /// perfect balance.
    pub fn imbalance(&self) -> f64 {
        let active: Vec<f64> = self.load.iter().copied().filter(|l| *l > 0.0).collect();
        if active.is_empty() {
            return 1.0;
        }
        let mean = active.iter().sum::<f64>() / active.len() as f64;
        let max = active.iter().fold(0.0f64, |a, b| a.max(*b));
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Greedy capacity-constrained assignment: clients in descending demand
/// order go to the nearest (geo-RTT) site with headroom, spilling outward.
/// `capacities[i] = f64::INFINITY` models an uncapped site; a failed site
/// gets capacity 0.
pub fn assign_load_aware(
    topo: &Topology,
    cdn: &CdnDeployment,
    model: &LoadModel,
    capacities: &[f64],
) -> Assignment {
    assert_eq!(capacities.len(), cdn.num_sites());
    let mut order: Vec<(NodeId, f64)> = model.demands.clone();
    // Heaviest first; ties broken by id for determinism.
    order.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));

    // Per-client site preference by great-circle RTT.
    let site_coords: Vec<_> = cdn
        .site_nodes()
        .iter()
        .map(|&n| topo.node(n).coords)
        .collect();

    let mut load = vec![0.0; cdn.num_sites()];
    let mut mapping = HashMap::new();
    let mut unplaced = 0.0;
    for (client, demand) in order {
        let c = topo.node(client).coords;
        let mut prefs: Vec<(f64, usize)> = site_coords
            .iter()
            .enumerate()
            .map(|(i, sc)| (c.distance_km(sc), i))
            .collect();
        prefs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
        let slot = prefs
            .iter()
            .find(|(_, i)| load[*i] + demand <= capacities[*i]);
        match slot {
            Some((_, i)) => {
                load[*i] += demand;
                mapping.insert(client, SiteId(*i as u8));
            }
            None => unplaced += demand,
        }
    }
    Assignment {
        mapping,
        load,
        unplaced,
    }
}

/// The load each site would carry under pure anycast: clients fall where
/// BGP puts them, demands and capacities notwithstanding.
pub fn anycast_load(
    env: &ForwardEnv<'_>,
    cdn: &CdnDeployment,
    model: &LoadModel,
    anycast_addr: Ipv4Net,
) -> Vec<f64> {
    let mut load = vec![0.0; cdn.num_sites()];
    for (client, demand) in &model.demands {
        if let Some(site) = catchment(env, cdn, *client, anycast_addr) {
            load[site.index()] += demand;
        }
    }
    load
}

/// Installs an assignment into the CDN's authoritative DNS: each client's
/// preferred site plus a nearest-first fallback ranking for failures.
pub fn apply_to_dns(
    topo: &Topology,
    cdn: &CdnDeployment,
    assignment: &Assignment,
    auth: &mut Authoritative,
) {
    for (&client, &site) in &assignment.mapping {
        auth.assign(client, site);
        let c = topo.node(client).coords;
        let mut ranking: Vec<(f64, SiteId)> = cdn
            .sites()
            .map(|s| {
                let d = c.distance_km(&topo.node(cdn.node(s)).coords);
                (d, s)
            })
            .collect();
        ranking.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
        auth.set_fallback(client, ranking.into_iter().map(|(_, s)| s).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_event::{SimDuration, SimTime};
    use bobw_net::Prefix;
    use bobw_topology::{generate, GenConfig};

    fn testbed() -> (Topology, CdnDeployment, RngFactory) {
        // Same world a `bobw_core::ExperimentConfig::quick(8)` testbed
        // builds: the small generator under master seed 8.
        let rng = RngFactory::new(8);
        let (topo, cdn) = generate(&GenConfig::small(), &rng);
        (topo, cdn, rng)
    }

    #[test]
    fn demands_deterministic_and_heavy_on_eyeballs() {
        let (topo, _, rng) = testbed();
        let a = LoadModel::sample(&topo, &rng);
        let b = LoadModel::sample(&topo, &rng);
        assert_eq!(a.demands(), b.demands());
        assert_eq!(a.demands().len(), topo.client_nodes().count());
        // Eyeballs dominate total demand.
        let eyeball: f64 = a
            .demands()
            .iter()
            .filter(|(n, _)| topo.node(*n).kind == NodeKind::Eyeball)
            .map(|(_, d)| *d)
            .sum();
        assert!(eyeball > a.total() * 0.5);
    }

    #[test]
    fn uncapped_assignment_places_everyone_nearest() {
        let (topo, cdn, rng) = testbed();
        let model = LoadModel::sample(&topo, &rng);
        let caps = vec![f64::INFINITY; cdn.num_sites()];
        let a = assign_load_aware(&topo, &cdn, &model, &caps);
        assert_eq!(a.mapping.len(), model.demands().len());
        assert_eq!(a.unplaced, 0.0);
        assert!((a.load.iter().sum::<f64>() - model.total()).abs() < 1e-6);
        // Everyone is at their geographically nearest site.
        for (&client, &site) in &a.mapping {
            let c = topo.node(client).coords;
            let assigned = c.distance_km(&topo.node(cdn.node(site)).coords);
            for other in cdn.sites() {
                let d = c.distance_km(&topo.node(cdn.node(other)).coords);
                assert!(assigned <= d + 1e-9, "client {client} not at nearest site");
            }
        }
    }

    #[test]
    fn capacity_forces_spill() {
        let (topo, cdn, rng) = testbed();
        let model = LoadModel::sample(&topo, &rng);
        let fair = model.total() / cdn.num_sites() as f64;
        let caps = vec![fair * 1.2; cdn.num_sites()];
        let a = assign_load_aware(&topo, &cdn, &model, &caps);
        for (i, l) in a.load.iter().enumerate() {
            assert!(
                *l <= caps[i] + 1e-9,
                "site {i} overloaded: {l} > {}",
                caps[i]
            );
        }
        // Capacity 1.2× fair share is enough to place everything.
        assert!(
            a.unplaced < model.total() * 0.05,
            "too much unplaced demand: {}",
            a.unplaced
        );
        // And the balance is tight by construction.
        assert!(a.imbalance() <= 1.25, "imbalance {}", a.imbalance());
    }

    #[test]
    fn failed_site_spills_to_survivors() {
        let (topo, cdn, rng) = testbed();
        let model = LoadModel::sample(&topo, &rng);
        let fair = model.total() / cdn.num_sites() as f64;
        let mut caps = vec![fair * 1.6; cdn.num_sites()];
        let before = assign_load_aware(&topo, &cdn, &model, &caps);
        let ams = cdn.by_name("ams").unwrap();
        caps[ams.index()] = 0.0;
        let after = assign_load_aware(&topo, &cdn, &model, &caps);
        assert_eq!(after.load[ams.index()], 0.0);
        assert!(after.mapping.values().all(|s| *s != ams));
        // The displaced demand lands on the survivors.
        let survivors_before: f64 = before
            .load
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != ams.index())
            .map(|(_, l)| *l)
            .sum();
        let survivors_after: f64 = after
            .load
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != ams.index())
            .map(|(_, l)| *l)
            .sum();
        assert!(survivors_after >= survivors_before);
    }

    #[test]
    fn assignment_feeds_dns() {
        let (topo, cdn, rng) = testbed();
        let model = LoadModel::sample(&topo, &rng);
        let caps = vec![f64::INFINITY; cdn.num_sites()];
        let a = assign_load_aware(&topo, &cdn, &model, &caps);
        let prefixes: Vec<Prefix> = (0..cdn.num_sites())
            .map(|i| format!("10.1.{i}.0/24").parse().unwrap())
            .collect();
        let mut auth = Authoritative::new(prefixes, SimDuration::from_secs(60));
        apply_to_dns(&topo, &cdn, &a, &mut auth);
        let (&client, &site) = a.mapping.iter().next().expect("nonempty");
        let ans = auth
            .resolve(client, SimTime::ZERO)
            .expect("assigned client resolves");
        assert_eq!(ans.site, site);
        // After a failure, resolution falls back to another site.
        auth.mark_failed(site);
        let ans2 = auth.resolve(client, SimTime::ZERO);
        if let Some(ans2) = ans2 {
            assert_ne!(ans2.site, site);
        }
    }

    #[test]
    fn imbalance_of_even_load_is_one() {
        let a = Assignment {
            mapping: HashMap::new(),
            load: vec![5.0, 5.0, 5.0],
            unplaced: 0.0,
        };
        assert!((a.imbalance() - 1.0).abs() < 1e-12);
        let b = Assignment {
            mapping: HashMap::new(),
            load: vec![10.0, 5.0, 0.0],
            unplaced: 0.0,
        };
        assert!(b.imbalance() > 1.3);
    }
}
