//! The per-experiment traffic simulation: demand accumulation on ticks,
//! per-site overload/shedding, and the periodic load-aware DNS controller.
//!
//! `bobw-core` owns the event engine; it schedules a `TrafficTick` every
//! [`TrafficConfig::tick_interval_s`] seconds and calls [`TrafficSim::on_tick`]
//! with a catchment oracle for the current FIBs. The traffic layer is
//! strictly observational with respect to probing: it never touches BGP,
//! the probe schedule, or any RNG stream the rest of the experiment draws
//! from (its only stream is `"traffic-resteer"`), which is what keeps
//! `traffic: None` results byte-identical to pre-traffic builds.
//!
//! Two steering modes mirror the Sinha et al. comparison:
//!
//! * [`Steering::Catchment`] (pure anycast) — each client's demand lands
//!   on whatever site the data plane currently delivers to. After a site
//!   failure BGP dumps the whole catchment on a neighbor, and nothing can
//!   shed it: the overload **cascade**.
//! * [`Steering::Dns`] (every DNS-controlled technique) — demand follows
//!   the controller's client→site assignment. Every `control_every` ticks
//!   the controller re-packs clients (heaviest first, nearest site with
//!   headroom) to at most `utilization_ceiling × capacity` per site;
//!   moved clients adopt the new site after a TTL-uniform lag, exactly
//!   like the drain machinery's DNS model.

use bobw_event::{RngFactory, SimDuration, SimTime};
use bobw_net::NodeId;
use bobw_topology::{CdnDeployment, SiteId, Topology, REGIONS};
use serde::{Deserialize, Serialize};

use crate::config::TrafficConfig;
use crate::demand::{DemandModel, Surge};

/// Who decides where a client's demand goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steering {
    /// BGP's catchment (pure anycast): no load awareness, no shedding.
    Catchment,
    /// The CDN's authoritative DNS, driven by the load-aware controller.
    Dns,
}

/// Deterministic per-cell traffic outcome, attached to `FailoverResult`
/// (and therefore crossing the distributed-dispatch wire). Host state
/// never enters: every field is a pure function of the experiment config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSummary {
    /// Demand ticks evaluated.
    pub ticks: u32,
    /// Per-site peak utilization (load/capacity) strictly before the
    /// measurement anchor `t_fail`.
    pub peak_utilization_before: Vec<f64>,
    /// Per-site peak utilization at or after `t_fail`.
    pub peak_utilization_after: Vec<f64>,
    /// Demand offered / served / shed (overload beyond capacity) /
    /// unserved (no reachable or assigned-up site), summed over ticks.
    pub offered: f64,
    pub served: f64,
    pub shed: f64,
    /// Overload diverted to scrubbing capacity instead of shed (only
    /// while a `Scrub` mitigation is active).
    pub scrubbed: f64,
    pub unserved: f64,
    /// Client re-steers the DNS controller issued.
    pub resteers: u64,
    /// Base-demand weight of each probed target, aligned with the
    /// result's `outcomes` — what makes reconnection/failover CDFs
    /// demand-weighted.
    pub target_weights: Vec<f64>,
}

impl TrafficSummary {
    /// Highest per-site utilization seen at or after the failure.
    pub fn peak_after(&self) -> f64 {
        self.peak_utilization_after
            .iter()
            .fold(0.0f64, |a, b| a.max(*b))
    }

    /// Highest per-site utilization seen before the failure.
    pub fn peak_before(&self) -> f64 {
        self.peak_utilization_before
            .iter()
            .fold(0.0f64, |a, b| a.max(*b))
    }

    /// Shed demand as a fraction of offered demand.
    pub fn shed_fraction(&self) -> f64 {
        if self.offered > 0.0 {
            self.shed / self.offered
        } else {
            0.0
        }
    }

    /// Scrubbed demand as a fraction of offered demand.
    pub fn scrubbed_fraction(&self) -> f64 {
        if self.offered > 0.0 {
            self.scrubbed / self.offered
        } else {
            0.0
        }
    }

    /// Unserved demand as a fraction of offered demand.
    pub fn unserved_fraction(&self) -> f64 {
        if self.offered > 0.0 {
            self.unserved / self.offered
        } else {
            0.0
        }
    }
}

/// The live traffic state of one experiment cell.
pub struct TrafficSim {
    cfg: TrafficConfig,
    demand: DemandModel,
    capacities: Vec<f64>,
    steering: Steering,
    /// Per-client site preference (site indices, nearest geo first).
    prefs: Vec<Vec<u8>>,
    /// DNS mode: the assignment clients currently resolve to.
    assignment: Vec<Option<SiteId>>,
    /// Controller re-steers not yet adopted (TTL lag): (adopt-at, client
    /// index, new site).
    pending: Vec<(SimTime, u32, SiteId)>,
    down: Vec<SiteId>,
    ticks: u32,
    control_rounds: u32,
    resteers: u64,
    peak_before: Vec<f64>,
    peak_after: Vec<f64>,
    offered: f64,
    served: f64,
    shed: f64,
    scrubbed: f64,
    unserved: f64,
    load: Vec<f64>,
    /// Active scrubbing mitigation: (per-tick pool as a fraction of total
    /// capacity, active-until time).
    scrub: Option<(f64, SimTime)>,
}

impl TrafficSim {
    pub fn new(
        cfg: &TrafficConfig,
        topo: &Topology,
        cdn: &CdnDeployment,
        rng: &RngFactory,
        steering: Steering,
    ) -> TrafficSim {
        let demand = DemandModel::sample(topo, rng, cfg);
        let num_sites = cdn.num_sites();
        let fair = demand.total_base() / num_sites.max(1) as f64;
        let mut capacities = vec![fair * cfg.capacity_headroom; num_sites];
        // Regional provisioning asymmetry: scale each region's sites by
        // its configured factor (validate() has already vetted the names).
        for rc in &cfg.region_capacity {
            if let Some(idx) = REGIONS.iter().position(|r| r.name == rc.region) {
                for (s, &n) in cdn.site_nodes().iter().enumerate() {
                    if topo.node(n).region == idx {
                        capacities[s] *= rc.factor;
                    }
                }
            }
        }
        let site_coords: Vec<_> = cdn
            .site_nodes()
            .iter()
            .map(|&n| topo.node(n).coords)
            .collect();
        let prefs: Vec<Vec<u8>> = (0..demand.len())
            .map(|i| {
                let c = topo.node(demand.node(i)).coords;
                let mut order: Vec<(f64, u8)> = site_coords
                    .iter()
                    .enumerate()
                    .map(|(s, sc)| (c.distance_km(sc), s as u8))
                    .collect();
                order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
                order.into_iter().map(|(_, s)| s).collect()
            })
            .collect();
        let mut sim = TrafficSim {
            cfg: cfg.clone(),
            capacities,
            steering,
            prefs,
            assignment: vec![None; demand.len()],
            pending: Vec::new(),
            down: Vec::new(),
            ticks: 0,
            control_rounds: 0,
            resteers: 0,
            peak_before: vec![0.0; num_sites],
            peak_after: vec![0.0; num_sites],
            offered: 0.0,
            served: 0.0,
            shed: 0.0,
            scrubbed: 0.0,
            unserved: 0.0,
            load: vec![0.0; num_sites],
            scrub: None,
            demand,
        };
        if steering == Steering::Dns {
            // Initial mapping: the same greedy pack the controller runs,
            // adopted instantly (clients resolve fresh on first connect).
            let desired = sim.pack(0.0);
            sim.assignment = desired;
        }
        sim
    }

    pub fn tick_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.cfg.tick_interval_s)
    }

    pub fn steering(&self) -> Steering {
        self.steering
    }

    pub fn demand(&self) -> &DemandModel {
        &self.demand
    }

    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    // --- Fault-op entry points (no-ops never reach here: bobw-core only
    // calls these when traffic is enabled). ---

    pub fn site_down(&mut self, site: SiteId) {
        if !self.down.contains(&site) {
            self.down.push(site);
        }
    }

    pub fn site_up(&mut self, site: SiteId) {
        self.down.retain(|s| *s != site);
    }

    pub fn add_surge(&mut self, surge: Surge) {
        self.demand.add_surge(surge);
    }

    pub fn shift_region(&mut self, region: usize, factor: f64) {
        self.demand.shift_region(region, factor);
    }

    pub fn change_capacity(&mut self, site: SiteId, factor: f64) {
        self.capacities[site.index()] *= factor;
    }

    /// Activates a scrubbing mitigation until `until`: each tick, up to
    /// `capacity_factor × total site capacity` of overload is diverted to
    /// the scrubbing pool (counted as `scrubbed`) before anything is
    /// shed. A later activation replaces an earlier one.
    pub fn activate_scrub(&mut self, capacity_factor: f64, until: SimTime) {
        self.scrub = Some((capacity_factor, until));
    }

    /// Greedy capacity-constrained pack of current demand at time `t`:
    /// heaviest clients first, each to its nearest up site whose load
    /// stays within `utilization_ceiling × capacity`. Clients that fit
    /// nowhere come back `None` (DNS-shed demand).
    fn pack(&self, t: f64) -> Vec<Option<SiteId>> {
        let caps: Vec<f64> = self
            .capacities
            .iter()
            .enumerate()
            .map(|(s, c)| {
                if self.down.contains(&SiteId(s as u8)) {
                    0.0
                } else {
                    c * self.cfg.utilization_ceiling
                }
            })
            .collect();
        let demands: Vec<f64> = (0..self.demand.len())
            .map(|i| self.demand.at(i, t))
            .collect();
        let mut order: Vec<usize> = (0..self.demand.len()).collect();
        order.sort_by(|&a, &b| {
            demands[b]
                .partial_cmp(&demands[a])
                .expect("finite")
                .then(self.demand.node(a).cmp(&self.demand.node(b)))
        });
        let mut load = vec![0.0; caps.len()];
        let mut out = vec![None; self.demand.len()];
        for i in order {
            let d = demands[i];
            for &s in &self.prefs[i] {
                let s = s as usize;
                if load[s] + d <= caps[s] {
                    load[s] += d;
                    out[i] = Some(SiteId(s as u8));
                    break;
                }
            }
        }
        out
    }

    /// One demand tick. `catchment` maps a client node to the site the
    /// data plane currently delivers it to (`None` = black hole); it is
    /// only consulted in [`Steering::Catchment`] mode.
    pub fn on_tick(
        &mut self,
        now: SimTime,
        t_fail: SimTime,
        rng: &RngFactory,
        mut catchment: impl FnMut(NodeId) -> Option<SiteId>,
    ) {
        // 1. Matured re-steers take effect (the client re-resolved).
        let assignment = &mut self.assignment;
        let mut matured = 0;
        self.pending.retain(|&(at, i, site)| {
            if at <= now {
                assignment[i as usize] = Some(site);
                matured += 1;
                false
            } else {
                true
            }
        });
        let _ = matured;

        // 2. Demand lands on serving sites.
        let t = now.as_secs_f64();
        self.load.iter_mut().for_each(|l| *l = 0.0);
        for i in 0..self.demand.len() {
            let d = self.demand.at(i, t);
            self.offered += d;
            let site = match self.steering {
                Steering::Catchment => catchment(self.demand.node(i)),
                Steering::Dns => self.assignment[i].filter(|s| !self.down.contains(s)),
            };
            match site {
                Some(s) => self.load[s.index()] += d,
                None => self.unserved += d,
            }
        }

        // 3. Utilization, overload, shedding.
        let peaks = if now < t_fail {
            &mut self.peak_before
        } else {
            &mut self.peak_after
        };
        // This tick's scrubbing pool: a fraction of total capacity that
        // absorbs overload before it is shed (while the mitigation runs).
        let mut scrub_pool = match self.scrub {
            Some((factor, until)) if now < until => factor * self.capacities.iter().sum::<f64>(),
            _ => 0.0,
        };
        for (s, peak) in peaks.iter_mut().enumerate() {
            let cap = self.capacities[s].max(f64::MIN_POSITIVE);
            let util = self.load[s] / cap;
            if util > *peak {
                *peak = util;
            }
            if self.load[s] > self.capacities[s] {
                // Overloaded: capacity's worth is served (degraded), the
                // excess is diverted to scrubbing while the pool lasts,
                // and the remainder is shed at the door.
                self.served += self.capacities[s];
                let excess = self.load[s] - self.capacities[s];
                let diverted = excess.min(scrub_pool);
                scrub_pool -= diverted;
                self.scrubbed += diverted;
                self.shed += excess - diverted;
            } else {
                self.served += self.load[s];
            }
        }
        self.ticks += 1;

        // 4. The DNS-weight controller (Sinha-style shedding).
        if self.steering == Steering::Dns && self.ticks.is_multiple_of(self.cfg.control_every) {
            self.control(now, t, rng);
        }
    }

    fn control(&mut self, now: SimTime, t: f64, rng: &RngFactory) {
        let desired = self.pack(t);
        let round = self.control_rounds as u64;
        self.control_rounds += 1;
        for (i, want) in desired.into_iter().enumerate() {
            let Some(want) = want else {
                // Unplaceable within the ceiling: leave the client where
                // it is (overload shows up in utilization, which is the
                // honest failure mode).
                continue;
            };
            if self.assignment[i] == Some(want) {
                // Already there; cancel any stale pending move.
                self.pending.retain(|&(_, j, _)| j as usize != i);
                continue;
            }
            if self
                .pending
                .iter()
                .any(|&(_, j, s)| j as usize == i && s == want)
            {
                continue; // Same move already in flight.
            }
            self.pending.retain(|&(_, j, _)| j as usize != i);
            // The client adopts the new record when its cached one
            // expires: uniform within the TTL, from a stream keyed by
            // ⟨controller round, client⟩ so draws are independent of
            // visit order and of every other stream in the experiment.
            let wait = rng.uniform_f64(
                "traffic-resteer",
                (round << 32) | i as u64,
                0.0,
                self.cfg.resteer_ttl_s.max(0.0),
            );
            self.pending
                .push((now + SimDuration::from_secs_f64(wait), i as u32, want));
            self.resteers += 1;
        }
    }

    /// Folds the run into its deterministic summary. `targets` is the
    /// cell's probed target list; each target's weight is its base demand
    /// (1.0 for a node outside the demand population — cannot happen for
    /// client targets, but stay total).
    pub fn summary(&self, targets: &[NodeId]) -> TrafficSummary {
        let target_weights = targets
            .iter()
            .map(|&n| {
                self.demand
                    .index_of(n)
                    .map(|i| self.demand.base(i))
                    .unwrap_or(1.0)
            })
            .collect();
        TrafficSummary {
            ticks: self.ticks,
            peak_utilization_before: self.peak_before.clone(),
            peak_utilization_after: self.peak_after.clone(),
            offered: self.offered,
            served: self.served,
            shed: self.shed,
            scrubbed: self.scrubbed,
            unserved: self.unserved,
            resteers: self.resteers,
            target_weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_topology::{generate, GenConfig};

    fn world() -> (Topology, CdnDeployment, RngFactory) {
        let rng = RngFactory::new(8);
        let (topo, cdn) = generate(&GenConfig::small(), &rng);
        (topo, cdn, rng)
    }

    fn flat_config() -> TrafficConfig {
        TrafficConfig {
            diurnal_amplitude: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn dns_mode_serves_everything_within_capacity() {
        let (topo, cdn, rng) = world();
        let cfg = flat_config();
        let mut sim = TrafficSim::new(&cfg, &topo, &cdn, &rng, Steering::Dns);
        let t_fail = SimTime::from_nanos(u64::MAX);
        for k in 0..10u64 {
            sim.on_tick(
                SimTime::ZERO + SimDuration::from_secs(10 * k),
                t_fail,
                &rng,
                |_| None,
            );
        }
        let s = sim.summary(&[]);
        assert_eq!(s.ticks, 10);
        assert!(s.offered > 0.0);
        // Headroom 1.6 × ceiling 0.9 > 1: everything placeable, nothing
        // shed, nothing over capacity.
        assert_eq!(s.shed, 0.0);
        assert!(s.unserved < s.offered * 1e-9, "unserved {}", s.unserved);
        assert!(s.peak_before() <= cfg.utilization_ceiling + 1e-9);
        assert_eq!(s.peak_after(), 0.0, "no tick at or past t_fail");
    }

    #[test]
    fn region_capacity_scales_only_the_named_regions_sites() {
        let (topo, cdn, rng) = world();
        let base = TrafficSim::new(&flat_config(), &topo, &cdn, &rng, Steering::Dns);
        let mut cfg = flat_config();
        cfg.region_capacity = vec![crate::RegionCapacity {
            region: "seattle".into(),
            factor: 2.5,
        }];
        cfg.validate().unwrap();
        let scaled = TrafficSim::new(&cfg, &topo, &cdn, &rng, Steering::Dns);
        let idx = REGIONS.iter().position(|r| r.name == "seattle").unwrap();
        let mut touched = 0;
        for (s, &n) in cdn.site_nodes().iter().enumerate() {
            let expect = if topo.node(n).region == idx {
                touched += 1;
                base.capacities()[s] * 2.5
            } else {
                base.capacities()[s]
            };
            assert!(
                (scaled.capacities()[s] - expect).abs() < 1e-9,
                "site {s}: {} vs {}",
                scaled.capacities()[s],
                expect
            );
        }
        assert!(touched > 0, "the small topology deploys in seattle");

        let mut bad = cfg.clone();
        bad.region_capacity[0].region = "atlantis".into();
        assert!(bad.validate().unwrap_err().contains("unknown region"));
        bad = cfg;
        bad.region_capacity[0].factor = 0.0;
        assert!(bad.validate().unwrap_err().contains("factor"));
    }

    #[test]
    fn asymmetric_capacity_conserves_demand() {
        // Demand accounting must balance exactly under per-region
        // asymmetry: offered = served + shed + unserved on every tick, and
        // a lean region sheds where the uniform world absorbed.
        let (topo, cdn, rng) = world();
        let mut cfg = flat_config();
        // Starve every region: capacity below the demand each site's
        // catchment carries, so the adversarial oracle overloads it.
        cfg.region_capacity = REGIONS
            .iter()
            .map(|r| crate::RegionCapacity {
                region: r.name.to_string(),
                factor: 0.1,
            })
            .collect();
        cfg.validate().unwrap();
        let mut sim = TrafficSim::new(&cfg, &topo, &cdn, &rng, Steering::Catchment);
        let t_fail = SimTime::ZERO;
        for k in 0..5u64 {
            sim.on_tick(
                SimTime::ZERO + SimDuration::from_secs(10 * k),
                t_fail,
                &rng,
                |_| Some(SiteId(0)),
            );
        }
        let s = sim.summary(&[]);
        assert!(s.offered > 0.0);
        assert!(s.shed > 0.0, "starved capacity must shed");
        assert!(
            (s.offered - (s.served + s.shed + s.unserved)).abs() < 1e-6,
            "conservation: offered {} != served {} + shed {} + unserved {}",
            s.offered,
            s.served,
            s.shed,
            s.unserved
        );
    }

    #[test]
    fn catchment_mode_follows_the_oracle_and_overloads() {
        let (topo, cdn, rng) = world();
        let cfg = flat_config();
        let mut sim = TrafficSim::new(&cfg, &topo, &cdn, &rng, Steering::Catchment);
        // Adversarial catchment: everyone lands on site 0.
        let t_fail = SimTime::ZERO;
        sim.on_tick(SimTime::ZERO, t_fail, &rng, |_| Some(SiteId(0)));
        let s = sim.summary(&[]);
        // One site carrying all demand at headroom 1.6 of the fair share
        // across 8 sites is utilization 8/1.6 = 5.
        assert!(s.peak_after() > 4.0, "peak {}", s.peak_after());
        assert!(s.shed > 0.0, "overload must shed");
        assert!((s.offered - (s.served + s.shed + s.unserved)).abs() < 1e-6);
    }

    #[test]
    fn failed_site_demand_is_resteered_by_the_controller() {
        let (topo, cdn, rng) = world();
        let mut cfg = flat_config();
        cfg.control_every = 1;
        cfg.resteer_ttl_s = 10.0;
        let mut sim = TrafficSim::new(&cfg, &topo, &cdn, &rng, Steering::Dns);
        let hot = SiteId(0);
        sim.site_down(hot);
        let t_fail = SimTime::ZERO;
        let mut times = Vec::new();
        for k in 0..20u64 {
            let now = SimTime::ZERO + SimDuration::from_secs(10 * k);
            sim.on_tick(now, t_fail, &rng, |_| None);
            times.push(sim.summary(&[]).unserved);
        }
        let s = sim.summary(&[]);
        assert!(s.resteers > 0, "controller must move the orphaned clients");
        // Once the TTL window has passed, the per-tick unserved demand
        // goes to ~zero: later ticks add nothing.
        let last_delta = times[19] - times[18];
        assert!(
            last_delta < 1e-9,
            "still unserved demand after re-steering: {last_delta}"
        );
        // And nobody is over the ceiling.
        assert!(s.peak_after() <= cfg.utilization_ceiling + 1e-9);
    }

    #[test]
    fn ticks_are_deterministic() {
        let (topo, cdn, rng) = world();
        let cfg = TrafficConfig::default();
        let run = || {
            let mut sim = TrafficSim::new(&cfg, &topo, &cdn, &rng, Steering::Dns);
            sim.site_down(SiteId(2));
            for k in 0..12u64 {
                sim.on_tick(
                    SimTime::ZERO + SimDuration::from_secs(10 * k),
                    SimTime::ZERO + SimDuration::from_secs(40),
                    &rng,
                    |_| None,
                );
            }
            sim.summary(&[topo.client_nodes().next().unwrap()])
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn capacity_change_scales_utilization() {
        let (topo, cdn, rng) = world();
        let cfg = flat_config();
        let mut a = TrafficSim::new(&cfg, &topo, &cdn, &rng, Steering::Catchment);
        let mut b = TrafficSim::new(&cfg, &topo, &cdn, &rng, Steering::Catchment);
        b.change_capacity(SiteId(0), 0.5);
        let t_fail = SimTime::ZERO;
        a.on_tick(SimTime::ZERO, t_fail, &rng, |_| Some(SiteId(0)));
        b.on_tick(SimTime::ZERO, t_fail, &rng, |_| Some(SiteId(0)));
        let (sa, sb) = (a.summary(&[]), b.summary(&[]));
        assert!(
            (sb.peak_after() - 2.0 * sa.peak_after()).abs() < 1e-6,
            "halving capacity doubles utilization"
        );
    }

    #[test]
    fn scrubbing_diverts_overload_until_it_expires() {
        let (topo, cdn, rng) = world();
        let cfg = flat_config();
        let mut sim = TrafficSim::new(&cfg, &topo, &cdn, &rng, Steering::Catchment);
        // Generous pool: everything site 0 cannot serve is scrubbed while
        // the mitigation is active (first tick), then shed (second tick).
        sim.activate_scrub(10.0, SimTime::ZERO + SimDuration::from_secs(5));
        let t_fail = SimTime::ZERO;
        sim.on_tick(SimTime::ZERO, t_fail, &rng, |_| Some(SiteId(0)));
        let mid = sim.summary(&[]);
        assert!(mid.scrubbed > 0.0, "active scrub must divert overload");
        assert_eq!(mid.shed, 0.0, "pool covers the whole excess");
        sim.on_tick(
            SimTime::ZERO + SimDuration::from_secs(10),
            t_fail,
            &rng,
            |_| Some(SiteId(0)),
        );
        let done = sim.summary(&[]);
        assert_eq!(done.scrubbed, mid.scrubbed, "expired scrub diverts nothing");
        assert!(done.shed > 0.0, "post-expiry overload is shed again");
        // Conservation holds with the new bucket in the ledger.
        let total = done.served + done.shed + done.scrubbed + done.unserved;
        assert!(
            (done.offered - total).abs() < 1e-6,
            "{}",
            done.offered - total
        );
        assert!(done.scrubbed_fraction() > 0.0);
    }

    #[test]
    fn undersized_scrub_pool_splits_excess_with_shedding() {
        let (topo, cdn, rng) = world();
        let cfg = flat_config();
        let mut sim = TrafficSim::new(&cfg, &topo, &cdn, &rng, Steering::Catchment);
        // Pool of 0.5× total capacity cannot absorb all of site 0's
        // overload (~7 fair shares of excess at headroom 1.6).
        sim.activate_scrub(0.5, SimTime::ZERO + SimDuration::from_secs(60));
        sim.on_tick(SimTime::ZERO, SimTime::ZERO, &rng, |_| Some(SiteId(0)));
        let s = sim.summary(&[]);
        assert!(s.scrubbed > 0.0);
        assert!(s.shed > 0.0, "undersized pool must still shed the rest");
        let total = s.served + s.shed + s.scrubbed + s.unserved;
        assert!((s.offered - total).abs() < 1e-6);
    }

    #[test]
    fn summary_weights_follow_base_demand() {
        let (topo, cdn, rng) = world();
        let cfg = TrafficConfig::default();
        let sim = TrafficSim::new(&cfg, &topo, &cdn, &rng, Steering::Dns);
        let clients: Vec<NodeId> = topo.client_nodes().take(5).collect();
        let s = sim.summary(&clients);
        assert_eq!(s.target_weights.len(), 5);
        for (i, &n) in clients.iter().enumerate() {
            let idx = sim.demand().index_of(n).unwrap();
            assert_eq!(s.target_weights[i], sim.demand().base(idx));
            assert!(s.target_weights[i] > 0.0);
        }
    }
}
