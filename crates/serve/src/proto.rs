//! The client half of the service wire protocol.
//!
//! Workers speak the unchanged `bobw_dist` coordinator protocol; this
//! module adds what a *client* connection exchanges after its
//! `Greeting::Client` handshake is welcomed: framed [`ClientRequest`] /
//! [`ClientReply`] messages on the same codec. Every request gets at
//! least one reply; `Watch` streams a [`ClientReply::Cell`] per completed
//! cell (in completion order) and terminates with
//! [`ClientReply::JobDone`].

use bobw_core::ExperimentConfig;
use bobw_dist::wire::{Wire, WireError};
use bobw_dist::wire_struct;
use bobw_dist::{CellOutput, CellSpec};

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for the scheduler (FIFO by job id).
    Queued,
    /// Its batch is on the coordinator now.
    Running,
    /// Every cell completed; outputs are available.
    Done,
    /// The batch errored (interrupt, poisoned cell, …); see the job error.
    Failed,
}

impl JobState {
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// Inverse of [`JobState::as_str`], for reloading persisted metadata.
    pub fn parse(s: &str) -> Option<JobState> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            _ => return None,
        })
    }
}

impl Wire for JobState {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u32).encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u32::decode(buf)? {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Done,
            3 => JobState::Failed,
            d => return Err(WireError::BadDiscriminant(d)),
        })
    }
}

/// What a welcomed client may ask the daemon.
#[derive(Debug, Clone)]
pub enum ClientRequest {
    /// Submit a job described by a [`crate::job::JobSpec`] JSON document;
    /// the daemon expands it to a cell grid.
    Submit { spec_json: String },
    /// Submit an exact, pre-expanded batch — the `--dispatch daemon:…`
    /// path, which must reproduce a local run byte-for-byte and therefore
    /// ships its own config and cell list rather than a spec.
    SubmitRaw {
        name: String,
        config: Box<ExperimentConfig>,
        cells: Vec<CellSpec>,
    },
    /// List all jobs the daemon knows (including reloaded ones).
    Jobs,
    /// Stream the job's completed cells (replaying any that already
    /// landed), then its terminal state.
    Watch { job_id: u64 },
    /// The metrics plane: queue/job counters, throughput, worker liveness.
    Status,
    /// The resilience matrix aggregated over all completed jobs.
    Matrix,
    /// Shut the daemon down (drains workers, persists state).
    Quit,
}

/// Daemon → client replies.
#[derive(Debug, Clone)]
pub enum ClientReply {
    /// The request failed; the connection stays usable.
    Error {
        message: String,
    },
    Submitted {
        job_id: u64,
    },
    /// JSON array of [`crate::job::JobRow`].
    Jobs {
        rows_json: String,
    },
    /// One completed cell of a watched job (completion order). Boxed to
    /// keep the enum small next to the result payload.
    Cell {
        job_id: u64,
        cell_index: u64,
        output: Box<CellOutput>,
    },
    /// Terminal frame of a watch stream.
    JobDone {
        job_id: u64,
        state: JobState,
        error: Option<String>,
    },
    /// JSON of [`crate::daemon::StatusSnapshot`].
    Status {
        json: String,
    },
    /// JSON of [`crate::matrix::ResilienceMatrix`].
    Matrix {
        json: String,
    },
    /// Acknowledges `Quit`.
    Bye,
}

impl Wire for ClientRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClientRequest::Submit { spec_json } => {
                0u32.encode(out);
                spec_json.encode(out);
            }
            ClientRequest::SubmitRaw {
                name,
                config,
                cells,
            } => {
                1u32.encode(out);
                name.encode(out);
                config.encode(out);
                cells.encode(out);
            }
            ClientRequest::Jobs => 2u32.encode(out),
            ClientRequest::Watch { job_id } => {
                3u32.encode(out);
                job_id.encode(out);
            }
            ClientRequest::Status => 4u32.encode(out),
            ClientRequest::Matrix => 5u32.encode(out),
            ClientRequest::Quit => 6u32.encode(out),
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u32::decode(buf)? {
            0 => ClientRequest::Submit {
                spec_json: String::decode(buf)?,
            },
            1 => ClientRequest::SubmitRaw {
                name: String::decode(buf)?,
                config: Box::new(ExperimentConfig::decode(buf)?),
                cells: Vec::decode(buf)?,
            },
            2 => ClientRequest::Jobs,
            3 => ClientRequest::Watch {
                job_id: u64::decode(buf)?,
            },
            4 => ClientRequest::Status,
            5 => ClientRequest::Matrix,
            6 => ClientRequest::Quit,
            d => return Err(WireError::BadDiscriminant(d)),
        })
    }
}

impl Wire for ClientReply {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClientReply::Error { message } => {
                0u32.encode(out);
                message.encode(out);
            }
            ClientReply::Submitted { job_id } => {
                1u32.encode(out);
                job_id.encode(out);
            }
            ClientReply::Jobs { rows_json } => {
                2u32.encode(out);
                rows_json.encode(out);
            }
            ClientReply::Cell {
                job_id,
                cell_index,
                output,
            } => {
                3u32.encode(out);
                job_id.encode(out);
                cell_index.encode(out);
                output.encode(out);
            }
            ClientReply::JobDone {
                job_id,
                state,
                error,
            } => {
                4u32.encode(out);
                job_id.encode(out);
                state.encode(out);
                error.encode(out);
            }
            ClientReply::Status { json } => {
                5u32.encode(out);
                json.encode(out);
            }
            ClientReply::Matrix { json } => {
                6u32.encode(out);
                json.encode(out);
            }
            ClientReply::Bye => 7u32.encode(out),
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(match u32::decode(buf)? {
            0 => ClientReply::Error {
                message: String::decode(buf)?,
            },
            1 => ClientReply::Submitted {
                job_id: u64::decode(buf)?,
            },
            2 => ClientReply::Jobs {
                rows_json: String::decode(buf)?,
            },
            3 => ClientReply::Cell {
                job_id: u64::decode(buf)?,
                cell_index: u64::decode(buf)?,
                output: Box::new(CellOutput::decode(buf)?),
            },
            4 => ClientReply::JobDone {
                job_id: u64::decode(buf)?,
                state: JobState::decode(buf)?,
                error: Option::decode(buf)?,
            },
            5 => ClientReply::Status {
                json: String::decode(buf)?,
            },
            6 => ClientReply::Matrix {
                json: String::decode(buf)?,
            },
            7 => ClientReply::Bye,
            d => return Err(WireError::BadDiscriminant(d)),
        })
    }
}

/// The replayable essence of a job, persisted to `--state-dir` as wire
/// bytes (`job-<id>.task.bin`) so a restarted daemon re-runs exactly the
/// batch that was submitted — same config, same cell order.
#[derive(Debug, Clone)]
pub struct JobTask {
    pub config: ExperimentConfig,
    pub cells: Vec<CellSpec>,
}

wire_struct!(JobTask { config, cells });

#[cfg(test)]
mod tests {
    use super::*;
    use bobw_dist::wire::{decode_exact, encode_vec};

    #[test]
    fn requests_round_trip() {
        let reqs = [
            ClientRequest::Submit {
                spec_json: "{\"techniques\": [\"anycast\"]}".into(),
            },
            ClientRequest::SubmitRaw {
                name: "bench".into(),
                config: Box::new(ExperimentConfig::quick(3)),
                cells: vec![CellSpec::Failover {
                    technique: "anycast".into(),
                    site: "bos".into(),
                }],
            },
            ClientRequest::Jobs,
            ClientRequest::Watch { job_id: 7 },
            ClientRequest::Status,
            ClientRequest::Matrix,
            ClientRequest::Quit,
        ];
        for req in &reqs {
            let bytes = encode_vec(req);
            let back: ClientRequest = decode_exact(&bytes).unwrap();
            // The config has no PartialEq; compare debug skeletons.
            assert_eq!(
                std::mem::discriminant(req),
                std::mem::discriminant(&back),
                "{req:?}"
            );
        }
    }

    #[test]
    fn replies_round_trip() {
        let replies = [
            ClientReply::Error {
                message: "no".into(),
            },
            ClientReply::Submitted { job_id: 3 },
            ClientReply::Jobs {
                rows_json: "[]".into(),
            },
            ClientReply::JobDone {
                job_id: 3,
                state: JobState::Failed,
                error: Some("boom".into()),
            },
            ClientReply::Status { json: "{}".into() },
            ClientReply::Matrix { json: "{}".into() },
            ClientReply::Bye,
        ];
        for reply in &replies {
            let bytes = encode_vec(reply);
            let back: ClientReply = decode_exact(&bytes).unwrap();
            assert_eq!(
                std::mem::discriminant(reply),
                std::mem::discriminant(&back),
                "{reply:?}"
            );
        }
    }

    #[test]
    fn job_state_round_trips() {
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
        ] {
            let bytes = encode_vec(&state);
            assert_eq!(decode_exact::<JobState>(&bytes).unwrap(), state);
            assert_eq!(JobState::parse(state.as_str()), Some(state));
        }
        assert_eq!(JobState::parse("weird"), None);
    }
}
