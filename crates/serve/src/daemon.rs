//! The `bobw serve` daemon: one listener, two populations.
//!
//! A single [`Endpoint`] accepts both *workers* (which speak the
//! unchanged `bobw_dist` protocol and are handed to the coordinator's
//! [`WorkerPort`]) and *clients* (which submit jobs, watch results, and
//! query the metrics plane). The first frame of every connection is the
//! coordinator's [`Challenge`]; the peer's `Greeting` then classifies it.
//!
//! One scheduler thread owns a detached [`Coordinator`] and drains the
//! job queue FIFO. Each completed cell lands in an index-keyed slot of
//! its job (preserving the byte-identity contract with local runs) and is
//! appended to a completion log that `Watch` streams replay under a
//! condvar — a watcher attached late sees every cell exactly once, in
//! completion order.
//!
//! With `--state-dir`, job metadata, the submitted batch, and completed
//! results are persisted as they change; a restarted daemon lists done
//! jobs with their results and re-queues jobs that were interrupted
//! mid-flight.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use bobw_core::ExperimentConfig;
use bobw_dist::wire::{decode_exact, encode_vec, recv, send};
use bobw_dist::{
    interrupt, vet_client, AuthSecret, CellOutput, CellSpec, Conn, Coordinator, CoordinatorConfig,
    Endpoint, Greeting, HelloReply, WorkerPort, WorkerStat,
};
use serde::Serialize;

use crate::job::{expand_spec, JobRow};
use crate::proto::{ClientReply, ClientRequest, JobState, JobTask};

/// How the daemon runs. [`ServeConfig::new`] picks the defaults the CLI
/// documents: secret from `BOBW_SECRET`, catalog `scenarios/`, the
/// coordinator's stock lease timing.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Where to listen (workers and clients share it).
    pub listen: Endpoint,
    /// Persist job state here; `None` = in-memory only.
    pub state_dir: Option<PathBuf>,
    /// Shared handshake secret; `None` = open mode.
    pub secret: Option<AuthSecret>,
    /// Scenario catalog for spec expansion.
    pub catalog: PathBuf,
    pub lease_timeout: Duration,
    pub tick: Duration,
}

impl ServeConfig {
    pub fn new(listen: Endpoint) -> ServeConfig {
        let stock = CoordinatorConfig::default();
        ServeConfig {
            listen,
            state_dir: None,
            secret: stock.secret.clone(),
            catalog: PathBuf::from(bobw_scenario::CATALOG_DIR),
            lease_timeout: stock.lease_timeout,
            tick: stock.tick,
        }
    }
}

/// The metrics plane: what `bobw serve --status` prints.
#[derive(Debug, Clone, Serialize)]
pub struct StatusSnapshot {
    pub uptime_s: f64,
    pub jobs_queued: usize,
    pub jobs_running: usize,
    pub jobs_done: usize,
    pub jobs_failed: usize,
    /// Cells completed since the daemon started (reloaded results do not
    /// count — this is live throughput, not history).
    pub cells_done: u64,
    /// Cells still owed across queued + running jobs.
    pub cells_pending: usize,
    pub cells_per_sec: f64,
    pub workers: Vec<WorkerStat>,
}

/// One job and everything a watcher needs to replay it.
struct Job {
    name: String,
    state: JobState,
    error: Option<String>,
    config: ExperimentConfig,
    cells: Vec<CellSpec>,
    /// Index-keyed result slots — the determinism contract.
    outputs: Vec<Option<CellOutput>>,
    /// Cell indices in completion order; watchers replay this.
    completion_log: Vec<usize>,
}

impl Job {
    fn row(&self, id: u64) -> JobRow {
        JobRow {
            id,
            name: self.name.clone(),
            state: self.state.as_str().to_string(),
            cells_total: self.cells.len(),
            cells_done: self.completion_log.len(),
            error: self.error.clone(),
        }
    }
}

#[derive(Default)]
struct Table {
    jobs: BTreeMap<u64, Job>,
    next_id: u64,
}

struct Shared {
    table: Mutex<Table>,
    /// Signals completed cells and state changes to watchers.
    cv: Condvar,
    quit: AtomicBool,
    started: Instant,
    cells_completed: AtomicU64,
    worker_stats: Arc<Mutex<Vec<WorkerStat>>>,
    secret: Option<AuthSecret>,
    catalog: PathBuf,
    state_dir: Option<PathBuf>,
    /// The bound address (real port for `tcp://…:0`), used to poke the
    /// accept loop awake on shutdown.
    local: Endpoint,
}

/// A started daemon: its bound endpoint plus the supervisor thread.
pub struct DaemonHandle {
    endpoint: Endpoint,
    thread: thread::JoinHandle<()>,
}

impl DaemonHandle {
    /// The endpoint the daemon actually bound (with the kernel-assigned
    /// port when the config asked for `:0`).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Blocks until the daemon shuts down (client `Quit` or interrupt).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// Starts the daemon in background threads and returns once the listener
/// is bound.
pub fn start(cfg: ServeConfig) -> io::Result<DaemonHandle> {
    // A previous daemon in this process may have quit via the interrupt
    // flag; a fresh daemon must not inherit it.
    interrupt::reset_interrupt();
    let listener = cfg.listen.bind()?;
    let local = listener.local_endpoint()?;

    let worker_stats = Arc::new(Mutex::new(Vec::new()));
    let (mut coordinator, port) = Coordinator::detached(CoordinatorConfig {
        lease_timeout: cfg.lease_timeout,
        tick: cfg.tick,
        secret: cfg.secret.clone(),
    });
    coordinator.set_stats_sink(worker_stats.clone());

    let mut table = Table::default();
    if let Some(dir) = &cfg.state_dir {
        std::fs::create_dir_all(dir)?;
        load_state(dir, &mut table);
    }

    let shared = Arc::new(Shared {
        table: Mutex::new(table),
        cv: Condvar::new(),
        quit: AtomicBool::new(false),
        started: Instant::now(),
        cells_completed: AtomicU64::new(0),
        worker_stats,
        secret: cfg.secret,
        catalog: cfg.catalog,
        state_dir: cfg.state_dir,
        local: local.clone(),
    });

    let scheduler = {
        let shared = shared.clone();
        thread::spawn(move || scheduler_loop(coordinator, &shared))
    };

    let endpoint = local.clone();
    let supervisor = thread::spawn(move || {
        loop {
            let conn = match listener.accept() {
                Ok(c) => c,
                Err(_) => break,
            };
            if shared.quit.load(Ordering::SeqCst) {
                break;
            }
            let port = port.clone();
            let shared = shared.clone();
            thread::spawn(move || handle_connection(conn, &port, &shared));
        }
        // Wake any watcher still parked on the condvar so its client
        // connection can wind down.
        shared.cv.notify_all();
        let _ = scheduler.join();
    });

    Ok(DaemonHandle {
        endpoint,
        thread: supervisor,
    })
}

/// [`start`] + [`DaemonHandle::join`]: runs the daemon on this thread
/// until a client asks it to quit or the process is interrupted.
pub fn run(cfg: ServeConfig) -> io::Result<Endpoint> {
    let handle = start(cfg)?;
    let endpoint = handle.endpoint().clone();
    handle.join();
    Ok(endpoint)
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

fn scheduler_loop(mut coordinator: Coordinator, shared: &Arc<Shared>) {
    loop {
        if shared.quit.load(Ordering::SeqCst) {
            break;
        }
        // FIFO: lowest queued job id first.
        let next = {
            let mut table = shared.table.lock().unwrap();
            let picked = table
                .jobs
                .iter()
                .find(|(_, j)| j.state == JobState::Queued)
                .map(|(id, _)| *id);
            picked.map(|id| {
                let job = table.jobs.get_mut(&id).expect("picked job exists");
                job.state = JobState::Running;
                persist_meta(shared, id, job);
                (id, job.config.clone(), job.cells.clone())
            })
        };
        let Some((id, config, cells)) = next else {
            // Idle: keep worker lifecycle (handshakes, leases, heartbeats)
            // moving while we wait for submissions.
            coordinator.pump_events(Duration::from_millis(100));
            continue;
        };

        let result = coordinator.run_batch_with(&config, &cells, |index, output| {
            let mut table = shared.table.lock().unwrap();
            if let Some(job) = table.jobs.get_mut(&id) {
                job.outputs[index] = Some(output.clone());
                job.completion_log.push(index);
            }
            drop(table);
            shared.cells_completed.fetch_add(1, Ordering::Relaxed);
            shared.cv.notify_all();
        });

        let mut table = shared.table.lock().unwrap();
        let job = table.jobs.get_mut(&id).expect("running job exists");
        match result {
            Ok(outputs) => {
                job.state = JobState::Done;
                job.error = None;
                persist_meta(shared, id, job);
                persist_results(shared, id, &outputs);
            }
            Err(e) if interrupt::interrupted() || shared.quit.load(Ordering::SeqCst) => {
                // Interrupted mid-batch: the job is not failed, it is
                // unfinished. Re-queue it so a restarted daemon (or the
                // persisted state) replays it from scratch.
                job.state = JobState::Queued;
                job.error = Some(e);
                job.outputs = vec![None; job.cells.len()];
                job.completion_log.clear();
                persist_meta(shared, id, job);
                drop(table);
                shared.quit.store(true, Ordering::SeqCst);
                shared.cv.notify_all();
                break;
            }
            Err(e) => {
                job.state = JobState::Failed;
                job.error = Some(e);
                persist_meta(shared, id, job);
            }
        }
        drop(table);
        shared.cv.notify_all();
    }
    shared.quit.store(true, Ordering::SeqCst);
    shared.cv.notify_all();
    // Drain the worker fleet so `run_worker` loops return cleanly.
    coordinator.shutdown();
    // Unblock the accept loop in case shutdown came from an interrupt
    // rather than a client Quit (which pokes it itself).
    let _ = shared.local.connect();
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

fn handle_connection(conn: Conn, port: &WorkerPort, shared: &Arc<Shared>) {
    conn.set_nodelay();
    let Ok(mut writer) = conn.try_clone() else {
        return;
    };
    let mut reader = conn;
    let Ok(nonce) = port.send_challenge(&mut writer) else {
        return;
    };
    match recv::<_, Greeting>(&mut reader) {
        Ok(Some(Greeting::Worker(hello))) => port.adopt_worker(reader, writer, hello, &nonce),
        Ok(Some(Greeting::Client(hello))) => {
            if let Err(reason) = vet_client(&hello, &nonce, shared.secret.as_ref()) {
                eprintln!("[serve] rejecting client {}: {reason}", hello.client_name);
                let _ = send(&mut writer, &HelloReply::Rejected { reason });
                return;
            }
            if send(&mut writer, &HelloReply::Welcome).is_err() {
                return;
            }
            serve_client(&mut reader, &mut writer, shared);
        }
        // EOF or garbage: drop the connection silently (port scanners,
        // the shutdown self-poke).
        Ok(None) | Err(_) => {}
    }
}

fn serve_client(reader: &mut Conn, writer: &mut Conn, shared: &Arc<Shared>) {
    loop {
        let request = match recv::<_, ClientRequest>(reader) {
            Ok(Some(r)) => r,
            Ok(None) | Err(_) => return,
        };
        let ok = match request {
            ClientRequest::Submit { spec_json } => {
                let reply = match expand_spec(&spec_json, &shared.catalog) {
                    Ok(job) => ClientReply::Submitted {
                        job_id: enqueue(shared, job.name, job.config, job.cells),
                    },
                    Err(message) => ClientReply::Error { message },
                };
                send(writer, &reply).is_ok()
            }
            ClientRequest::SubmitRaw {
                name,
                config,
                cells,
            } => {
                let reply = if cells.is_empty() {
                    ClientReply::Error {
                        message: "raw submission has no cells".into(),
                    }
                } else {
                    ClientReply::Submitted {
                        job_id: enqueue(shared, name, *config, cells),
                    }
                };
                send(writer, &reply).is_ok()
            }
            ClientRequest::Jobs => {
                let rows: Vec<JobRow> = {
                    let table = shared.table.lock().unwrap();
                    table.jobs.iter().map(|(id, j)| j.row(*id)).collect()
                };
                let rows_json = serde_json::to_string(&rows).expect("rows serialize");
                send(writer, &ClientReply::Jobs { rows_json }).is_ok()
            }
            ClientRequest::Watch { job_id } => stream_job(writer, shared, job_id),
            ClientRequest::Status => {
                let json = serde_json::to_string(&snapshot(shared)).expect("snapshot serializes");
                send(writer, &ClientReply::Status { json }).is_ok()
            }
            ClientRequest::Matrix => {
                let matrix = {
                    let table = shared.table.lock().unwrap();
                    crate::matrix::build(
                        table
                            .jobs
                            .iter()
                            .map(|(id, j)| (*id, j.state == JobState::Done, j.outputs.as_slice())),
                    )
                };
                let json = serde_json::to_string(&matrix).expect("matrix serializes");
                send(writer, &ClientReply::Matrix { json }).is_ok()
            }
            ClientRequest::Quit => {
                let _ = send(writer, &ClientReply::Bye);
                shared.quit.store(true, Ordering::SeqCst);
                // A running batch exits through the coordinator's
                // interrupt poll; an idle scheduler sees the flag on its
                // next tick.
                interrupt::simulate_interrupt();
                shared.cv.notify_all();
                let _ = shared.local.connect();
                return;
            }
        };
        if !ok {
            return;
        }
    }
}

fn enqueue(
    shared: &Arc<Shared>,
    name: String,
    config: ExperimentConfig,
    cells: Vec<CellSpec>,
) -> u64 {
    let mut table = shared.table.lock().unwrap();
    let id = table.next_id;
    table.next_id += 1;
    let job = Job {
        name,
        state: JobState::Queued,
        error: None,
        outputs: vec![None; cells.len()],
        completion_log: Vec::new(),
        config,
        cells,
    };
    persist_meta(shared, id, &job);
    persist_task(shared, id, &job);
    table.jobs.insert(id, job);
    id
}

/// Streams a job to a watcher: replay the completion log from the start,
/// then follow it live until the job reaches a terminal state. Returns
/// whether the connection is still usable.
fn stream_job(writer: &mut Conn, shared: &Arc<Shared>, job_id: u64) -> bool {
    let mut cursor = 0usize;
    let mut table = shared.table.lock().unwrap();
    loop {
        let Some(job) = table.jobs.get(&job_id) else {
            drop(table);
            return send(
                writer,
                &ClientReply::Error {
                    message: format!("no such job: {job_id}"),
                },
            )
            .is_ok();
        };
        // Batch up everything new, then send without holding the lock —
        // a slow watcher must not stall the scheduler's on_cell hook.
        let mut pending: Vec<(usize, CellOutput)> = Vec::new();
        while cursor < job.completion_log.len() {
            let index = job.completion_log[cursor];
            if let Some(output) = &job.outputs[index] {
                pending.push((index, output.clone()));
            }
            cursor += 1;
        }
        let terminal = match job.state {
            JobState::Done | JobState::Failed => Some((job.state, job.error.clone())),
            _ => None,
        };
        drop(table);
        for (index, output) in pending {
            let reply = ClientReply::Cell {
                job_id,
                cell_index: index as u64,
                output: Box::new(output),
            };
            if send(writer, &reply).is_err() {
                return false;
            }
        }
        if let Some((state, error)) = terminal {
            return send(
                writer,
                &ClientReply::JobDone {
                    job_id,
                    state,
                    error,
                },
            )
            .is_ok();
        }
        if shared.quit.load(Ordering::SeqCst) {
            // Daemon going down mid-watch: report the job as it stands.
            let state = shared
                .table
                .lock()
                .unwrap()
                .jobs
                .get(&job_id)
                .map(|j| j.state)
                .unwrap_or(JobState::Queued);
            return send(
                writer,
                &ClientReply::JobDone {
                    job_id,
                    state,
                    error: Some("daemon shutting down".into()),
                },
            )
            .is_ok();
        }
        table = shared.table.lock().unwrap();
        // Re-check under the lock before sleeping: a cell may have landed
        // between the send loop and re-acquisition.
        if table
            .jobs
            .get(&job_id)
            .is_some_and(|j| cursor < j.completion_log.len())
        {
            continue;
        }
        let (guard, _) = shared
            .cv
            .wait_timeout(table, Duration::from_millis(500))
            .unwrap();
        table = guard;
    }
}

fn snapshot(shared: &Arc<Shared>) -> StatusSnapshot {
    let table = shared.table.lock().unwrap();
    let count = |s: JobState| table.jobs.values().filter(|j| j.state == s).count();
    let cells_pending = table
        .jobs
        .values()
        .filter(|j| matches!(j.state, JobState::Queued | JobState::Running))
        .map(|j| j.cells.len() - j.completion_log.len())
        .sum();
    let uptime_s = shared.started.elapsed().as_secs_f64().max(1e-9);
    let cells_done = shared.cells_completed.load(Ordering::Relaxed);
    StatusSnapshot {
        uptime_s,
        jobs_queued: count(JobState::Queued),
        jobs_running: count(JobState::Running),
        jobs_done: count(JobState::Done),
        jobs_failed: count(JobState::Failed),
        cells_done,
        cells_pending,
        cells_per_sec: cells_done as f64 / uptime_s,
        workers: shared.worker_stats.lock().unwrap().clone(),
    }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

fn persist_meta(shared: &Shared, id: u64, job: &Job) {
    if let Some(dir) = &shared.state_dir {
        let row = job.row(id);
        let json = serde_json::to_string(&row).expect("row serializes");
        if let Err(e) = std::fs::write(dir.join(format!("job-{id}.json")), json) {
            eprintln!("[serve] failed to persist job {id} metadata: {e}");
        }
    }
}

fn persist_task(shared: &Shared, id: u64, job: &Job) {
    if let Some(dir) = &shared.state_dir {
        let task = JobTask {
            config: job.config.clone(),
            cells: job.cells.clone(),
        };
        if let Err(e) = std::fs::write(dir.join(format!("job-{id}.task.bin")), encode_vec(&task)) {
            eprintln!("[serve] failed to persist job {id} task: {e}");
        }
    }
}

#[allow(clippy::ptr_arg)] // encode_vec needs the Vec impl of Wire
fn persist_results(shared: &Shared, id: u64, outputs: &Vec<CellOutput>) {
    if let Some(dir) = &shared.state_dir {
        let path = dir.join(format!("job-{id}.results.bin"));
        if let Err(e) = std::fs::write(path, encode_vec(outputs)) {
            eprintln!("[serve] failed to persist job {id} results: {e}");
        }
    }
}

/// Reloads persisted jobs. Done jobs come back with their results and a
/// fully replayed completion log; jobs caught mid-flight (queued or
/// running at shutdown) are re-queued; failed jobs keep their error.
fn load_state(dir: &Path, table: &mut Table) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(id) = name
            .strip_prefix("job-")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        let Ok(meta) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let Ok(row) = serde_json::from_str_typed::<JobRow>(&meta) else {
            eprintln!("[serve] skipping unreadable metadata for job {id}");
            continue;
        };
        let Ok(task_bytes) = std::fs::read(dir.join(format!("job-{id}.task.bin"))) else {
            eprintln!("[serve] skipping job {id}: no persisted task");
            continue;
        };
        let Ok(task) = decode_exact::<JobTask>(&task_bytes) else {
            eprintln!("[serve] skipping job {id}: corrupt persisted task");
            continue;
        };
        let state = JobState::parse(&row.state).unwrap_or(JobState::Queued);
        let mut job = Job {
            name: row.name,
            state: JobState::Queued,
            error: None,
            outputs: vec![None; task.cells.len()],
            completion_log: Vec::new(),
            config: task.config,
            cells: task.cells,
        };
        match state {
            JobState::Done => {
                let results = std::fs::read(dir.join(format!("job-{id}.results.bin")))
                    .ok()
                    .and_then(|bytes| decode_exact::<Vec<CellOutput>>(&bytes).ok());
                match results {
                    Some(outputs) if outputs.len() == job.cells.len() => {
                        job.completion_log = (0..outputs.len()).collect();
                        job.outputs = outputs.into_iter().map(Some).collect();
                        job.state = JobState::Done;
                    }
                    // Metadata says done but results are missing/corrupt:
                    // re-run rather than lie about having them.
                    _ => {
                        eprintln!("[serve] job {id} marked done but results unreadable; re-queued")
                    }
                }
            }
            JobState::Failed => {
                job.state = JobState::Failed;
                job.error = row.error;
            }
            // Queued or running at shutdown: run it (again) from scratch.
            JobState::Queued | JobState::Running => {}
        }
        table.jobs.insert(id, job);
    }
    table.next_id = table.jobs.keys().next_back().map_or(0, |max| max + 1);
}
