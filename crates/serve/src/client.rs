//! Client-side wrapper around the service protocol: handshake, then
//! typed request/reply calls. Used by the `bobw submit`/`watch`/`jobs`
//! subcommands and by the bench runner's `daemon:` dispatch.

use std::time::Duration;

use bobw_core::ExperimentConfig;
use bobw_dist::wire::{recv, send};
use bobw_dist::{
    AuthSecret, CellOutput, CellSpec, Challenge, ClientHello, Conn, Endpoint, Greeting, HelloReply,
    PROTOCOL_VERSION,
};

use crate::proto::{ClientReply, ClientRequest, JobState};

/// An authenticated client connection to a `bobw serve` daemon.
pub struct ServeClient {
    reader: Conn,
    writer: Conn,
}

impl ServeClient {
    /// Connects and completes the challenge/greeting handshake. Retries
    /// the TCP/unix connect briefly so a client racing daemon startup
    /// (tests, scripts) does not flake.
    pub fn connect(
        endpoint: &Endpoint,
        name: &str,
        secret: Option<&AuthSecret>,
    ) -> Result<ServeClient, String> {
        let conn = endpoint
            .connect_with_retry(Duration::from_secs(10))
            .map_err(|e| format!("connect to {endpoint}: {e}"))?;
        conn.set_nodelay();
        let writer = conn
            .try_clone()
            .map_err(|e| format!("clone connection: {e}"))?;
        let mut client = ServeClient {
            reader: conn,
            writer,
        };
        let challenge: Challenge = match recv(&mut client.reader) {
            Ok(Some(c)) => c,
            Ok(None) => return Err("server closed the connection before its challenge".into()),
            Err(e) => return Err(format!("read challenge: {e}")),
        };
        if challenge.auth_required && secret.is_none() {
            return Err(format!(
                "daemon requires authentication and client {name} has no secret \
                 (set BOBW_SECRET or pass --secret-file)"
            ));
        }
        let auth = secret
            .map(|s| s.client_tag(&challenge.nonce, PROTOCOL_VERSION, name))
            .unwrap_or_default();
        let greeting = Greeting::Client(ClientHello {
            protocol: PROTOCOL_VERSION,
            client_name: name.to_string(),
            auth,
        });
        send(&mut client.writer, &greeting).map_err(|e| format!("send greeting: {e}"))?;
        match recv::<_, HelloReply>(&mut client.reader) {
            Ok(Some(HelloReply::Welcome)) => Ok(client),
            Ok(Some(HelloReply::Rejected { reason })) => {
                Err(format!("daemon rejected client {name}: {reason}"))
            }
            Ok(None) => Err("server closed the connection during the handshake".into()),
            Err(e) => Err(format!("read handshake reply: {e}")),
        }
    }

    fn call(&mut self, request: &ClientRequest) -> Result<ClientReply, String> {
        send(&mut self.writer, request).map_err(|e| format!("send request: {e}"))?;
        match recv::<_, ClientReply>(&mut self.reader) {
            Ok(Some(reply)) => Ok(reply),
            Ok(None) => Err("daemon closed the connection".into()),
            Err(e) => Err(format!("read reply: {e}")),
        }
    }

    /// Submits a [`crate::job::JobSpec`] JSON document; returns the job id.
    pub fn submit_spec(&mut self, spec_json: &str) -> Result<u64, String> {
        match self.call(&ClientRequest::Submit {
            spec_json: spec_json.to_string(),
        })? {
            ClientReply::Submitted { job_id } => Ok(job_id),
            ClientReply::Error { message } => Err(message),
            other => Err(format!("unexpected reply to submit: {other:?}")),
        }
    }

    /// Submits a pre-expanded batch (config + exact cell list); the
    /// byte-identity path used by `--dispatch daemon:…`.
    pub fn submit_raw(
        &mut self,
        name: &str,
        config: &ExperimentConfig,
        cells: &[CellSpec],
    ) -> Result<u64, String> {
        match self.call(&ClientRequest::SubmitRaw {
            name: name.to_string(),
            config: Box::new(config.clone()),
            cells: cells.to_vec(),
        })? {
            ClientReply::Submitted { job_id } => Ok(job_id),
            ClientReply::Error { message } => Err(message),
            other => Err(format!("unexpected reply to submit: {other:?}")),
        }
    }

    /// Streams a job's cells (replaying completed ones) until it reaches
    /// a terminal state, which is returned with the job's error, if any.
    pub fn watch(
        &mut self,
        job_id: u64,
        mut on_cell: impl FnMut(u64, CellOutput),
    ) -> Result<(JobState, Option<String>), String> {
        send(&mut self.writer, &ClientRequest::Watch { job_id })
            .map_err(|e| format!("send watch: {e}"))?;
        loop {
            match recv::<_, ClientReply>(&mut self.reader) {
                Ok(Some(ClientReply::Cell {
                    cell_index, output, ..
                })) => on_cell(cell_index, *output),
                Ok(Some(ClientReply::JobDone { state, error, .. })) => return Ok((state, error)),
                Ok(Some(ClientReply::Error { message })) => return Err(message),
                Ok(Some(other)) => return Err(format!("unexpected frame in watch: {other:?}")),
                Ok(None) => return Err("daemon closed the connection mid-watch".into()),
                Err(e) => return Err(format!("read watch frame: {e}")),
            }
        }
    }

    /// All jobs the daemon knows, as typed rows.
    pub fn jobs(&mut self) -> Result<Vec<crate::job::JobRow>, String> {
        match self.call(&ClientRequest::Jobs)? {
            ClientReply::Jobs { rows_json } => serde_json::from_str_typed(&rows_json)
                .map_err(|e| format!("bad job listing from daemon: {e}")),
            ClientReply::Error { message } => Err(message),
            other => Err(format!("unexpected reply to jobs: {other:?}")),
        }
    }

    /// The metrics plane, as the daemon's status JSON.
    pub fn status_json(&mut self) -> Result<String, String> {
        match self.call(&ClientRequest::Status)? {
            ClientReply::Status { json } => Ok(json),
            ClientReply::Error { message } => Err(message),
            other => Err(format!("unexpected reply to status: {other:?}")),
        }
    }

    /// The resilience matrix over completed jobs, as JSON.
    pub fn matrix_json(&mut self) -> Result<String, String> {
        match self.call(&ClientRequest::Matrix)? {
            ClientReply::Matrix { json } => Ok(json),
            ClientReply::Error { message } => Err(message),
            other => Err(format!("unexpected reply to matrix: {other:?}")),
        }
    }

    /// Asks the daemon to shut down; returns once it acknowledges.
    pub fn quit(&mut self) -> Result<(), String> {
        match self.call(&ClientRequest::Quit)? {
            ClientReply::Bye => Ok(()),
            ClientReply::Error { message } => Err(message),
            other => Err(format!("unexpected reply to quit: {other:?}")),
        }
    }
}
