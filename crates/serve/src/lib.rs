//! # bobw-serve
//!
//! The persistent experiment service behind `bobw serve`: a long-lived
//! daemon that keeps a warm worker fleet between sweeps.
//!
//! The batch coordinator (`bobw_dist`) spins up per run: workers
//! connect, build a testbed, compute one grid, and everything is torn
//! down. For iterating on the paper's evaluation — same topology, many
//! sweeps — that cold start dominates. This crate keeps the coordinator
//! resident:
//!
//! * [`daemon`] — one listener classifies each connection by its
//!   greeting: workers go to the coordinator's [`bobw_dist::WorkerPort`]
//!   (unchanged worker protocol, so `bobw-worker` binaries and their
//!   process-wide testbed cache work as-is), clients get the job API.
//!   A FIFO scheduler drains the queue one batch at a time; `--state-dir`
//!   persists jobs across restarts.
//! * [`proto`] — the client half of the wire protocol (submit, watch,
//!   jobs, status, matrix, quit) on the same framed codec.
//! * [`job`] — the JSON job spec and its expansion into the exact cell
//!   grid the local runner would enumerate — service results are
//!   byte-identical to a local `--jobs 1` run.
//! * [`client`] — [`ServeClient`], the typed connection the CLI
//!   subcommands and the bench runner's `daemon:` dispatch use.
//! * [`matrix`] — the pooled resilience matrix over completed jobs.
//!
//! Authentication rides the coordinator's v4 challenge/tag handshake:
//! one shared secret (`BOBW_SECRET` / `--secret-file`) vets workers and
//! clients alike; without one the daemon runs open, like the batch
//! coordinator.

pub mod client;
pub mod daemon;
pub mod job;
pub mod matrix;
pub mod proto;

pub use client::ServeClient;
pub use daemon::{run, start, DaemonHandle, ServeConfig, StatusSnapshot};
pub use job::{expand_spec, ExpandedJob, JobRow, JobSpec};
pub use matrix::{MatrixCell, ResilienceMatrix};
pub use proto::{ClientReply, ClientRequest, JobState, JobTask};
