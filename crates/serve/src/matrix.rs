//! The resilience matrix: `bobw jobs --matrix` pools every failover cell
//! of every *completed* job by ⟨technique, failed site⟩ and reports the
//! paper's headline per-cell statistics — median time to failover,
//! median time to reconnection, and the fraction of targets that never
//! came back. Submitting the same sweep at several seeds and reading the
//! matrix is the service-mode equivalent of the local seed-sweep CLI.

use bobw_core::FailoverResult;
use bobw_dist::CellOutput;
use bobw_measure::Cdf;
use serde::Serialize;
use std::collections::BTreeMap;

/// Pooled statistics for one ⟨technique, site⟩ pair.
#[derive(Debug, Clone, Serialize)]
pub struct MatrixCell {
    pub technique: String,
    pub site: String,
    /// Contributing experiment cells (≥ 1; one per completed job that
    /// swept this pair).
    pub cells: usize,
    /// Median seconds from failure to first packet on a survivor site,
    /// pooled over every target of every contributing cell. `None` when
    /// no target stabilized.
    pub failover_p50_s: Option<f64>,
    /// Median seconds from failure to TCP reconnection.
    pub reconnection_p50_s: Option<f64>,
    /// Pooled fraction of controllable targets that never reconnected.
    pub never_reconnected_fraction: f64,
}

/// The full matrix plus how much evidence went into it.
#[derive(Debug, Clone, Serialize, Default)]
pub struct ResilienceMatrix {
    pub jobs_included: usize,
    pub cells: Vec<MatrixCell>,
}

#[derive(Default)]
struct Pool {
    cells: usize,
    failover_s: Vec<f64>,
    reconnection_s: Vec<f64>,
    targets: usize,
    never_reconnected: usize,
}

impl Pool {
    fn add(&mut self, r: &FailoverResult) {
        self.cells += 1;
        self.failover_s.extend(r.failover_secs());
        self.reconnection_s.extend(r.reconnection_secs());
        self.targets += r.outcomes.len();
        self.never_reconnected += r
            .outcomes
            .iter()
            .filter(|o| o.reconnection.is_none())
            .count();
    }
}

/// Builds the matrix from `(job_id, is_done, outputs)` rows. Only done
/// jobs contribute; control-plane cells and unfinished slots are skipped.
pub fn build<'a>(
    jobs: impl Iterator<Item = (u64, bool, &'a [Option<CellOutput>])>,
) -> ResilienceMatrix {
    let mut pools: BTreeMap<(String, String), Pool> = BTreeMap::new();
    let mut jobs_included = 0usize;
    for (_id, is_done, outputs) in jobs {
        if !is_done {
            continue;
        }
        jobs_included += 1;
        for output in outputs.iter().flatten() {
            if let CellOutput::Failover(r, _) = output {
                pools
                    .entry((r.technique.clone(), r.site_name.clone()))
                    .or_default()
                    .add(r);
            }
        }
    }
    let cells = pools
        .into_iter()
        .map(|((technique, site), pool)| MatrixCell {
            technique,
            site,
            cells: pool.cells,
            failover_p50_s: Cdf::new(pool.failover_s).quantile(0.5),
            reconnection_p50_s: Cdf::new(pool.reconnection_s).quantile(0.5),
            never_reconnected_fraction: if pool.targets == 0 {
                0.0
            } else {
                pool.never_reconnected as f64 / pool.targets as f64
            },
        })
        .collect();
    ResilienceMatrix {
        jobs_included,
        cells,
    }
}
