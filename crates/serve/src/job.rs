//! Job specs: the JSON document `bobw submit` sends and its expansion
//! into an `ExperimentConfig` plus a cell grid.
//!
//! A spec names *what* to sweep (techniques × sites at a scale/seed,
//! optionally under a fault scenario); the daemon expands it with exactly
//! the enumeration the local runner uses — techniques major, sites minor,
//! sites in testbed order — so a service job's outputs line up one-to-one
//! with a local `--jobs 1` run of the same sweep.

use std::path::Path;

use bobw_core::{ExperimentConfig, FailureMode, SessionModel, Technique, TrafficConfig};
use bobw_dist::CellSpec;
use serde::{Deserialize, Serialize};

/// The submit document. Everything but `techniques` is optional.
///
/// ```json
/// {
///   "name": "quick sweep",
///   "scale": "quick",
///   "seed": 42,
///   "techniques": ["anycast", "reactive-anycast"],
///   "sites": ["bos", "ams"],
///   "failure": "graceful",
///   "traffic": "on",
///   "scenario": "ddos-absorb-vs-shed"
/// }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// Display name; defaults to a summary of the sweep.
    pub name: Option<String>,
    /// `quick` (default) | `eval` | `large`.
    pub scale: Option<String>,
    /// Experiment seed (default 42).
    pub seed: Option<u64>,
    /// Technique names as in the paper's tables (required, non-empty).
    pub techniques: Vec<String>,
    /// Site names to fail; omitted = every site of the topology.
    pub sites: Option<Vec<String>>,
    /// `graceful` | `crash` (defaults to the config's failure mode).
    pub failure: Option<String>,
    /// `on` | `off` (default off): the observational traffic layer.
    pub traffic: Option<String>,
    /// Fault scenario: a catalog name (`"ddos-scrub"`) or a file path.
    pub scenario: Option<String>,
    /// `abstract` (default) | `message-level`: which BGP session model
    /// the cells run (see `bobw_core::SessionModel`).
    pub session: Option<String>,
}

/// A spec expanded against a concrete config: ready to queue.
#[derive(Debug, Clone)]
pub struct ExpandedJob {
    pub name: String,
    pub config: ExperimentConfig,
    pub cells: Vec<CellSpec>,
}

/// Resolves a scenario reference: an existing file path wins, then
/// `<catalog>/<name>.json`.
fn resolve_scenario(reference: &str, catalog: &Path) -> Result<bobw_scenario::Scenario, String> {
    let direct = Path::new(reference);
    if direct.is_file() {
        return bobw_scenario::load_file(direct);
    }
    let in_catalog = catalog.join(format!("{reference}.json"));
    if in_catalog.is_file() {
        return bobw_scenario::load_file(&in_catalog);
    }
    Err(format!(
        "scenario {reference:?} not found (not a file, and {} does not exist)",
        in_catalog.display()
    ))
}

/// Parses and expands a spec JSON document. Validation is strict: unknown
/// techniques, sites, scales, or scenario references are submit-time
/// errors, not worker-time failures.
pub fn expand_spec(spec_json: &str, catalog: &Path) -> Result<ExpandedJob, String> {
    let spec: JobSpec =
        serde_json::from_str_typed(spec_json).map_err(|e| format!("bad job spec: {e}"))?;
    expand(&spec, catalog)
}

/// [`expand_spec`] for an already-parsed spec.
pub fn expand(spec: &JobSpec, catalog: &Path) -> Result<ExpandedJob, String> {
    let seed = spec.seed.unwrap_or(42);
    let scale = spec.scale.as_deref().unwrap_or("quick");
    let mut config = match scale {
        "quick" => ExperimentConfig::quick(seed),
        "eval" => ExperimentConfig::eval(seed),
        "large" => {
            let mut c = ExperimentConfig::eval(seed);
            c.gen = bobw_topology::GenConfig::large();
            c
        }
        other => return Err(format!("unknown scale {other:?} (quick|eval|large)")),
    };
    match spec.failure.as_deref() {
        None => {}
        Some("graceful") => config.failure_mode = FailureMode::GracefulWithdrawal,
        Some("crash") => config.failure_mode = FailureMode::SilentCrash,
        Some(other) => return Err(format!("unknown failure {other:?} (graceful|crash)")),
    }
    match spec.traffic.as_deref() {
        None | Some("off") => {}
        Some("on") => config.traffic = Some(TrafficConfig::default()),
        Some(other) => return Err(format!("unknown traffic {other:?} (on|off)")),
    }
    match spec.session.as_deref() {
        None | Some("abstract") => {}
        Some("message-level") => config.session_model = SessionModel::MessageLevel,
        Some(other) => {
            return Err(format!(
                "unknown session {other:?} (abstract|message-level)"
            ))
        }
    }
    if let Some(reference) = &spec.scenario {
        let scenario = resolve_scenario(reference, catalog)?;
        scenario
            .validate()
            .map_err(|e| format!("scenario {reference:?}: {e}"))?;
        config.scenario = Some(scenario);
    }

    if spec.techniques.is_empty() {
        return Err("job spec needs at least one technique".into());
    }
    for t in &spec.techniques {
        Technique::parse(t)?;
    }

    let all_sites: Vec<String> = config.gen.sites.iter().map(|s| s.name.clone()).collect();
    let sites: Vec<String> = match &spec.sites {
        None => all_sites.clone(),
        Some(picked) => {
            if picked.is_empty() {
                return Err("job spec `sites` must not be an empty list (omit it for all)".into());
            }
            for s in picked {
                if !all_sites.iter().any(|n| n == s) {
                    return Err(format!(
                        "unknown site {s:?} (topology has: {})",
                        all_sites.join(" ")
                    ));
                }
            }
            picked.clone()
        }
    };

    let cells: Vec<CellSpec> = spec
        .techniques
        .iter()
        .flat_map(|t| {
            sites.iter().map(move |s| CellSpec::Failover {
                technique: t.clone(),
                site: s.clone(),
            })
        })
        .collect();

    let name = spec.name.clone().unwrap_or_else(|| {
        format!(
            "{}t x {}s @{scale} seed {seed}",
            spec.techniques.len(),
            sites.len()
        )
    });
    Ok(ExpandedJob {
        name,
        config,
        cells,
    })
}

/// One line of the `bobw jobs` listing (JSON rows on the wire; also the
/// `job-<id>.json` persistence format).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRow {
    pub id: u64,
    pub name: String,
    /// A [`crate::proto::JobState`] as its `as_str` form.
    pub state: String,
    pub cells_total: usize,
    pub cells_done: usize,
    pub error: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> std::path::PathBuf {
        // Unit tests run from the crate dir; the checked-in catalog lives
        // at the workspace root.
        std::path::PathBuf::from("../../scenarios")
    }

    #[test]
    fn expand_builds_the_technique_major_grid() {
        let json = r#"{
            "techniques": ["anycast", "reactive-anycast"],
            "sites": ["bos", "ams"],
            "seed": 7
        }"#;
        let job = expand_spec(json, &catalog()).unwrap();
        assert_eq!(job.cells.len(), 4);
        assert_eq!(
            job.cells[0],
            CellSpec::Failover {
                technique: "anycast".into(),
                site: "bos".into()
            }
        );
        assert_eq!(
            job.cells[2],
            CellSpec::Failover {
                technique: "reactive-anycast".into(),
                site: "bos".into()
            }
        );
        assert_eq!(job.config.seed, 7);
        assert!(job.name.contains("2t x 2s"));
    }

    #[test]
    fn omitted_sites_means_all_sites() {
        let json = r#"{"techniques": ["anycast"]}"#;
        let job = expand_spec(json, &catalog()).unwrap();
        assert_eq!(job.cells.len(), job.config.gen.sites.len());
    }

    #[test]
    fn bad_specs_are_rejected_at_submit_time() {
        let c = catalog();
        assert!(expand_spec("{", &c).unwrap_err().contains("bad job spec"));
        assert!(expand_spec(r#"{"techniques": []}"#, &c)
            .unwrap_err()
            .contains("at least one technique"));
        assert!(expand_spec(r#"{"techniques": ["warp-drive"]}"#, &c).is_err());
        assert!(
            expand_spec(r#"{"techniques": ["anycast"], "sites": ["atlantis"]}"#, &c)
                .unwrap_err()
                .contains("unknown site")
        );
        assert!(
            expand_spec(r#"{"techniques": ["anycast"], "scale": "galactic"}"#, &c)
                .unwrap_err()
                .contains("unknown scale")
        );
        assert!(
            expand_spec(r#"{"techniques": ["anycast"], "scenario": "no-such"}"#, &c)
                .unwrap_err()
                .contains("not found")
        );
    }

    #[test]
    fn session_field_selects_the_model() {
        let c = catalog();
        let json = r#"{"techniques": ["anycast"], "session": "message-level"}"#;
        let job = expand_spec(json, &c).unwrap();
        assert_eq!(job.config.session_model, SessionModel::MessageLevel);
        let json = r#"{"techniques": ["anycast"], "session": "abstract"}"#;
        let job = expand_spec(json, &c).unwrap();
        assert_eq!(job.config.session_model, SessionModel::Abstract);
        let json = r#"{"techniques": ["anycast"]}"#;
        let job = expand_spec(json, &c).unwrap();
        assert_eq!(job.config.session_model, SessionModel::Abstract);
        let json = r#"{"techniques": ["anycast"], "session": "telepathy"}"#;
        assert!(expand_spec(json, &c).unwrap_err().contains("session"));
    }

    #[test]
    fn scenario_resolves_by_catalog_name() {
        let json = r#"{
            "techniques": ["reactive-anycast"],
            "sites": ["bos"],
            "traffic": "on",
            "scenario": "ddos-absorb-vs-shed"
        }"#;
        let job = expand_spec(json, &catalog()).unwrap();
        let sc = job.config.scenario.expect("scenario attached");
        assert_eq!(sc.name, "ddos-absorb-vs-shed");
        assert!(job.config.traffic.is_some());
    }
}
