//! End-to-end tests for the `bobw serve` daemon: byte-identity with the
//! local runner, client authentication, lease-based rescue of cells from
//! a stuck worker across queued jobs, and state-dir persistence.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bobw_core::{ExperimentConfig, Testbed};
use bobw_dist::{
    build_fingerprint, execute_cell, run_worker, AuthSecret, CellOutput, CellSpec, Challenge,
    Endpoint, FromWorker, Greeting, Hello, HelloReply, ToWorker, Wire, WorkerConfig,
    PROTOCOL_VERSION,
};
use bobw_serve::{daemon, JobState, ServeClient, ServeConfig};

/// The daemon's quit path raises the process-wide interrupt flag, so two
/// daemons must never overlap in this test binary: each test holds this
/// lock for its whole body.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn test_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(5);
    cfg.targets_per_site = 6;
    cfg.probe.duration = bobw_event::SimDuration::from_secs(45);
    cfg
}

/// `techniques × first n sites`, in the runner's technique-major order.
fn grid(tb: &Testbed, techniques: &[&str], n_sites: usize) -> Vec<CellSpec> {
    let sites: Vec<String> = tb
        .cdn
        .sites()
        .take(n_sites)
        .map(|s| tb.cdn.name(s).to_string())
        .collect();
    techniques
        .iter()
        .flat_map(|t| {
            sites.iter().map(move |s| CellSpec::Failover {
                technique: t.to_string(),
                site: s.clone(),
            })
        })
        .collect()
}

/// Serializes the deterministic part of the outputs (results only — perf
/// wall times are host dependent by design).
fn results_json(outputs: &[CellOutput]) -> String {
    outputs
        .iter()
        .map(|o| match o {
            CellOutput::Failover(r, _) => serde_json::to_string(r).unwrap(),
            CellOutput::Control(r, _) => serde_json::to_string(r).unwrap(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn local_baseline(cfg: &ExperimentConfig, cells: &[CellSpec]) -> String {
    let tb = Testbed::new(cfg.clone());
    let outputs: Vec<CellOutput> = cells
        .iter()
        .map(|c| execute_cell(&tb, c).expect("local cell"))
        .collect();
    results_json(&outputs)
}

/// An open-mode config on an ephemeral TCP port, immune to a stray
/// BOBW_SECRET in the test environment.
fn open_serve_config() -> ServeConfig {
    let mut cfg = ServeConfig::new(Endpoint::parse("tcp://127.0.0.1:0").unwrap());
    cfg.secret = None;
    cfg.catalog = PathBuf::from("../../scenarios");
    cfg
}

fn spawn_worker(endpoint: &Endpoint, name: &str, threads: usize) -> std::thread::JoinHandle<u64> {
    let endpoint = endpoint.clone();
    let name = name.to_string();
    std::thread::spawn(move || {
        let mut wc = WorkerConfig::new(endpoint);
        wc.name = name;
        wc.threads = threads;
        wc.secret = None;
        run_worker(&wc).expect("worker")
    })
}

fn collect_watch(
    client: &mut ServeClient,
    job_id: u64,
    num_cells: usize,
) -> (Vec<CellOutput>, JobState) {
    let mut slots: Vec<Option<CellOutput>> = vec![None; num_cells];
    let (state, error) = client
        .watch(job_id, |index, output| {
            let slot = &mut slots[index as usize];
            assert!(slot.is_none(), "cell {index} streamed twice");
            *slot = Some(output);
        })
        .expect("watch");
    assert_eq!(error, None, "job reported an error");
    let outputs: Vec<CellOutput> = slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("cell {i} never streamed")))
        .collect();
    (outputs, state)
}

/// The tentpole acceptance test: a job submitted to the daemon and
/// watched over the wire yields results byte-identical to a sequential
/// local run of the same cells, and the metrics plane sees the work.
#[test]
fn serve_job_is_byte_identical_to_local_run() {
    let _guard = serial();
    let cfg = test_config();
    let tb = Testbed::new(cfg.clone());
    let cells = grid(&tb, &["anycast", "reactive-anycast"], 2);
    let expected = local_baseline(&cfg, &cells);

    let handle = daemon::start(open_serve_config()).expect("daemon");
    let endpoint = handle.endpoint().clone();
    let worker = spawn_worker(&endpoint, "svc-w1", 2);

    let mut client = ServeClient::connect(&endpoint, "identity-test", None).expect("client");
    let job_id = client.submit_raw("identity", &cfg, &cells).expect("submit");
    let (outputs, state) = collect_watch(&mut client, job_id, cells.len());
    assert_eq!(state, JobState::Done);
    assert_eq!(
        results_json(&outputs),
        expected,
        "service results must be byte-identical to the local run"
    );

    // A second watch replays the full stream from the completion log.
    let (replayed, state) = collect_watch(&mut client, job_id, cells.len());
    assert_eq!(state, JobState::Done);
    assert_eq!(results_json(&replayed), expected);

    let rows = client.jobs().expect("jobs");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].id, job_id);
    assert_eq!(rows[0].state, "done");
    assert_eq!(rows[0].cells_done, cells.len());

    let status = client.status_json().expect("status");
    assert!(
        status.contains("jobs_done"),
        "status missing counters: {status}"
    );
    assert!(
        status.contains("svc-w1"),
        "status missing worker stats: {status}"
    );

    let matrix = client.matrix_json().expect("matrix");
    assert!(
        matrix.contains("reactive-anycast"),
        "matrix missing technique: {matrix}"
    );

    client.quit().expect("quit");
    handle.join();
    assert_eq!(worker.join().unwrap(), cells.len() as u64);
}

/// Satellite: the daemon rejects unauthenticated and wrongly-keyed
/// clients, and accepts the right credential.
#[test]
fn client_authentication_is_enforced() {
    let _guard = serial();
    let secret = AuthSecret::new("svc-secret");
    let mut cfg = open_serve_config();
    cfg.secret = Some(secret.clone());
    let handle = daemon::start(cfg).expect("daemon");
    let endpoint = handle.endpoint().clone();

    let err = ServeClient::connect(&endpoint, "no-creds", None)
        .map(|_| ())
        .expect_err("must be rejected");
    assert!(err.contains("no secret"), "unexpected error: {err}");

    let wrong = AuthSecret::new("not-the-secret");
    let err = ServeClient::connect(&endpoint, "wrong-creds", Some(&wrong))
        .map(|_| ())
        .expect_err("must be rejected");
    assert!(err.contains("authentication"), "unexpected error: {err}");

    let mut client =
        ServeClient::connect(&endpoint, "right-creds", Some(&secret)).expect("authorized client");
    assert!(client.status_json().is_ok());
    client.quit().expect("quit");
    handle.join();
}

/// Satellite: cells leased to a dead (stuck) worker are reassigned to a
/// live one — across *two* queued jobs, exercising the daemon's FIFO
/// scheduler on top of the coordinator's lease machinery.
#[test]
fn stuck_worker_cells_are_rescued_across_queued_jobs() {
    let _guard = serial();
    let cfg = test_config();
    let tb = Testbed::new(cfg.clone());
    let cells_a = grid(&tb, &["anycast"], 1);
    let cells_b = grid(&tb, &["reactive-anycast"], 1);
    let expected_a = local_baseline(&cfg, &cells_a);
    let expected_b = local_baseline(&cfg, &cells_b);

    let mut serve_cfg = open_serve_config();
    serve_cfg.lease_timeout = Duration::from_millis(300);
    serve_cfg.tick = Duration::from_millis(20);
    let handle = daemon::start(serve_cfg).expect("daemon");
    let endpoint = handle.endpoint().clone();

    // A worker that completes the handshake, acks batches, and then
    // swallows every assignment without answering — only the lease
    // timeout can recover its cells.
    let stuck_got_assignment = Arc::new(AtomicBool::new(false));
    let stuck = {
        let endpoint = endpoint.clone();
        let got = Arc::clone(&stuck_got_assignment);
        std::thread::spawn(move || {
            let mut conn = endpoint.connect().unwrap();
            let _: Challenge = bobw_dist::wire::recv(&mut conn)
                .unwrap()
                .expect("challenge");
            let hello = Hello {
                protocol: PROTOCOL_VERSION,
                fingerprint: build_fingerprint(),
                worker_name: "stuck".to_string(),
                capacity: 1,
                auth: Vec::new(),
            };
            let mut payload = Vec::new();
            Greeting::Worker(hello).encode(&mut payload);
            bobw_dist::wire::write_frame(&mut conn, &payload).unwrap();
            match bobw_dist::wire::recv::<_, HelloReply>(&mut conn).unwrap() {
                Some(HelloReply::Welcome) => {}
                other => panic!("stuck worker not welcomed: {other:?}"),
            }
            loop {
                match bobw_dist::wire::recv::<_, ToWorker>(&mut conn) {
                    Ok(Some(ToWorker::Batch { .. })) => {
                        let mut payload = Vec::new();
                        FromWorker::Ready { cache_hit: false }.encode(&mut payload);
                        bobw_dist::wire::write_frame(&mut conn, &payload).unwrap();
                    }
                    Ok(Some(ToWorker::Assign { .. })) => {
                        got.store(true, Ordering::SeqCst);
                    }
                    Ok(Some(ToWorker::Drain)) => {}
                    Ok(Some(ToWorker::Shutdown)) | Ok(None) | Err(_) => break,
                }
            }
        })
    };

    // The rescuer joins after the stuck worker owns the first lease.
    let rescuer = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(700));
            let mut wc = WorkerConfig::new(endpoint);
            wc.name = "rescuer".to_string();
            wc.secret = None;
            run_worker(&wc).expect("rescuer")
        })
    };

    let mut client = ServeClient::connect(&endpoint, "queue-test", None).expect("client");
    let job_a = client
        .submit_raw("job-a", &cfg, &cells_a)
        .expect("submit a");
    let job_b = client
        .submit_raw("job-b", &cfg, &cells_b)
        .expect("submit b");

    let (outputs_a, state_a) = collect_watch(&mut client, job_a, cells_a.len());
    assert_eq!(state_a, JobState::Done);
    assert_eq!(results_json(&outputs_a), expected_a);

    let (outputs_b, state_b) = collect_watch(&mut client, job_b, cells_b.len());
    assert_eq!(state_b, JobState::Done);
    assert_eq!(results_json(&outputs_b), expected_b);

    assert!(
        stuck_got_assignment.load(Ordering::SeqCst),
        "the stuck worker should have been assigned at least one cell"
    );

    client.quit().expect("quit");
    handle.join();
    stuck.join().unwrap();
    let rescued = rescuer.join().unwrap();
    assert_eq!(
        rescued,
        (cells_a.len() + cells_b.len()) as u64,
        "the rescuer must have computed every cell of both jobs"
    );
}

/// A restarted daemon replays done jobs (results, watch stream, matrix)
/// from its state dir and re-queues jobs that never ran.
#[test]
fn state_dir_survives_daemon_restart() {
    let _guard = serial();
    let state_dir = std::env::temp_dir().join(format!("bobw-serve-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);

    let cfg = test_config();
    let tb = Testbed::new(cfg.clone());
    let cells = grid(&tb, &["anycast"], 2);
    let expected = local_baseline(&cfg, &cells);

    // First life: run one job to completion.
    let mut serve_cfg = open_serve_config();
    serve_cfg.state_dir = Some(state_dir.clone());
    let handle = daemon::start(serve_cfg).expect("daemon 1");
    let endpoint = handle.endpoint().clone();
    let worker = spawn_worker(&endpoint, "persist-w", 1);
    let mut client = ServeClient::connect(&endpoint, "persist-test", None).expect("client 1");
    let job_id = client
        .submit_raw("persisted", &cfg, &cells)
        .expect("submit");
    let (_, state) = collect_watch(&mut client, job_id, cells.len());
    assert_eq!(state, JobState::Done);
    client.quit().expect("quit 1");
    handle.join();
    worker.join().unwrap();

    // Second life: no workers at all — the done job must be fully
    // servable from disk, and a new submission must queue behind it.
    let mut serve_cfg = open_serve_config();
    serve_cfg.state_dir = Some(state_dir.clone());
    let handle = daemon::start(serve_cfg).expect("daemon 2");
    let endpoint = handle.endpoint().clone();
    let mut client = ServeClient::connect(&endpoint, "persist-test", None).expect("client 2");

    let rows = client.jobs().expect("jobs");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].id, job_id);
    assert_eq!(rows[0].state, "done");
    assert_eq!(rows[0].cells_done, cells.len());

    let (replayed, state) = collect_watch(&mut client, job_id, cells.len());
    assert_eq!(state, JobState::Done);
    assert_eq!(
        results_json(&replayed),
        expected,
        "replayed results must match the original run byte-for-byte"
    );

    let matrix = client.matrix_json().expect("matrix");
    assert!(
        matrix.contains("\"jobs_included\":1"),
        "unexpected matrix: {matrix}"
    );

    let queued_id = client.submit_raw("later", &cfg, &cells).expect("submit 2");
    assert_eq!(
        queued_id,
        job_id + 1,
        "ids must continue past reloaded jobs"
    );
    client.quit().expect("quit 2");
    handle.join();

    // Third life: the unrun job came back queued, not lost or done.
    let mut serve_cfg = open_serve_config();
    serve_cfg.state_dir = Some(state_dir.clone());
    let handle = daemon::start(serve_cfg).expect("daemon 3");
    let endpoint = handle.endpoint().clone();
    let mut client = ServeClient::connect(&endpoint, "persist-test", None).expect("client 3");
    let rows = client.jobs().expect("jobs");
    assert_eq!(rows.len(), 2);
    let later = rows.iter().find(|r| r.id == queued_id).expect("queued job");
    // The scheduler may already have claimed it (it runs as soon as the
    // daemon is up, waiting for workers) — what matters is that the job
    // came back unfinished rather than lost or spuriously done.
    assert!(
        later.state == "queued" || later.state == "running",
        "unexpected state {:?}",
        later.state
    );
    assert_eq!(later.cells_done, 0);
    client.quit().expect("quit 3");
    handle.join();

    let _ = std::fs::remove_dir_all(&state_dir);
}

/// A spec submitted as JSON expands server-side against the catalog and
/// runs like any other job; bad specs come back as submit-time errors.
#[test]
fn spec_submission_expands_and_runs() {
    let _guard = serial();
    let handle = daemon::start(open_serve_config()).expect("daemon");
    let endpoint = handle.endpoint().clone();
    let worker = spawn_worker(&endpoint, "spec-w", 2);

    let mut client = ServeClient::connect(&endpoint, "spec-test", None).expect("client");
    let err = client
        .submit_spec(r#"{"techniques": ["warp-drive"]}"#)
        .expect_err("bad technique must be rejected");
    assert!(err.contains("warp-drive"), "unexpected error: {err}");

    // Match the expansion exactly so the byte-identity baseline lines up.
    let spec_cfg = ExperimentConfig::quick(11);
    let tb = Testbed::new(spec_cfg.clone());
    let first_site = tb.cdn.name(tb.cdn.sites().next().unwrap()).to_string();
    let spec = format!(r#"{{"techniques": ["anycast"], "sites": ["{first_site}"], "seed": 11}}"#);
    let cells = vec![CellSpec::Failover {
        technique: "anycast".to_string(),
        site: first_site,
    }];
    let expected = local_baseline(&spec_cfg, &cells);

    let job_id = client.submit_spec(&spec).expect("submit spec");
    let (outputs, state) = collect_watch(&mut client, job_id, 1);
    assert_eq!(state, JobState::Done);
    assert_eq!(results_json(&outputs), expected);

    client.quit().expect("quit");
    handle.join();
    worker.join().unwrap();
}
