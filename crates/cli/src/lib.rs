//! Implementation of the `bobw` command-line tool.
//!
//! The CLI wraps the library the way an operator would use it: build an
//! Internet, run a failover drill, inspect a router's view of a prefix,
//! trace a packet. See [`run`] for the subcommand set.

use std::collections::BTreeMap;

use bobw_bgp::{dump_rib, BgpTimingConfig, OriginConfig, Standalone};
use bobw_core::{
    measure_control, run_failover, ExperimentConfig, FailureMode, SessionModel, Technique, Testbed,
    TrafficConfig, TrafficSummary,
};
use bobw_dataplane::{walk_with_path, ForwardEnv};
use bobw_event::SimDuration;
use bobw_measure::{percent, Cdf};
use bobw_net::{NodeId, Prefix};
use bobw_topology::{GenConfig, SiteId};

/// Parsed `--key value` options plus positional arguments.
#[derive(Debug, Default, Clone)]
pub struct Options {
    pub flags: BTreeMap<String, String>,
    pub positional: Vec<String>,
}

/// Flags that are presence-only switches: they never consume the next
/// argument, so `bobw topology --json` and `bobw submit SPEC --watch`
/// parse as expected.
const BOOL_FLAGS: &[&str] = &["json", "status", "watch", "matrix"];

/// Splits raw arguments into `--key value` pairs and positionals.
/// Unknown keys are kept; each consumer validates its own set.
pub fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut out = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&key) {
                out.flags.insert(key.to_string(), String::new());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("--{key} expects a value"))?;
            out.flags.insert(key.to_string(), value.clone());
        } else {
            out.positional.push(a.clone());
        }
    }
    Ok(out)
}

impl Options {
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    pub fn seed(&self) -> Result<u64, String> {
        match self.get("seed") {
            None => Ok(42),
            Some(v) => v.parse().map_err(|_| format!("bad --seed {v:?}")),
        }
    }

    pub fn scale_config(&self) -> Result<ExperimentConfig, String> {
        let seed = self.seed()?;
        let mut cfg = match self.get("scale").unwrap_or("quick") {
            "quick" => ExperimentConfig::quick(seed),
            "eval" => ExperimentConfig::eval(seed),
            "large" => {
                let mut c = ExperimentConfig::eval(seed);
                c.gen = GenConfig::large();
                c
            }
            other => return Err(format!("unknown --scale {other:?} (quick|eval|large)")),
        };
        if let Some(mode) = self.get("failure") {
            cfg.failure_mode = match mode {
                "graceful" => FailureMode::GracefulWithdrawal,
                "crash" => FailureMode::SilentCrash,
                other => return Err(format!("unknown --failure {other:?} (graceful|crash)")),
            };
        }
        if let Some(h) = self.get("hold") {
            cfg.timing.hold_time_s = h.parse().map_err(|_| format!("bad --hold {h:?}"))?;
        }
        match self.get("traffic") {
            None | Some("off") => {}
            Some("on") => cfg.traffic = Some(TrafficConfig::default()),
            Some(other) => return Err(format!("unknown --traffic {other:?} (on|off)")),
        }
        match self.get("session") {
            None | Some("abstract") => {}
            Some("message-level") => cfg.session_model = SessionModel::MessageLevel,
            Some(other) => {
                return Err(format!(
                    "unknown --session {other:?} (abstract|message-level)"
                ))
            }
        }
        Ok(cfg)
    }

    pub fn technique(&self) -> Result<Technique, String> {
        parse_technique(self.get("technique").unwrap_or("reactive-anycast"))
    }

    /// Worker threads for multi-site drills; defaults to the machine's
    /// available parallelism. Results are identical for any value.
    pub fn jobs(&self) -> Result<usize, String> {
        match self.get("jobs") {
            None => Ok(bobw_bench::default_jobs()),
            Some(v) => v
                .parse()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("bad --jobs {v:?} (integer >= 1)")),
        }
    }
}

/// Parses a technique name as used in the paper's tables. The logic lives
/// in [`Technique::parse`] (the wire protocol needs it without a CLI
/// dependency); this alias keeps the CLI's historical API.
pub fn parse_technique(name: &str) -> Result<Technique, String> {
    Technique::parse(name)
}

pub const USAGE: &str = "\
bobw — the Best-of-Both-Worlds CDN routing simulator

USAGE:
  bobw topology   [--scale quick|eval|large] [--seed N] [--json]
  bobw failover   [--technique T] [--site NAME|all] [--scale S] [--seed N]
                  [--failure graceful|crash] [--hold SECS] [--jobs N]
                  [--traffic on|off] [--session abstract|message-level]
                  [--dispatch local|tcp://HOST:PORT|unix://PATH]
  bobw worker     --connect tcp://HOST:PORT|unix://PATH [--threads N]
                  [--name S] [--secret-file F]
  bobw serve      [--listen URL] [--state-dir DIR] [--secret-file F]
                  [--catalog DIR]
  bobw serve      --status --connect URL [--secret-file F]
  bobw submit     SPEC.json --connect URL [--watch] [--secret-file F]
  bobw watch      JOB_ID --connect URL [--secret-file F]
  bobw jobs       --connect URL [--matrix] [--secret-file F]
  bobw catchment  [--scale S] [--seed N] [--prepend K]
  bobw inspect    --node N --prefix P [--scale S] [--seed N]
  bobw traceroute --from N --prefix P [--scale S] [--seed N]
  bobw scenario   list     [--catalog DIR]
  bobw scenario   validate [FILE ...|--catalog DIR] [--scale S] [--seed N]
  bobw scenario   run      FILE [--technique T] [--site NAME] [--scale S]
                  [--seed N] [--failure graceful|crash] [--traffic on|off]
                  [--session abstract|message-level]
  bobw help

Techniques: unicast, anycast, proactive-superprefix, reactive-anycast,
proactive-prepending-<k>[-selective], proactive-med-<m>, combined.
Sites: ams ath bos atl sea1 slc sea2 msn.

`failover --site all --dispatch tcp://…` serves the per-site cells to
remote `bobw worker` processes instead of local threads; results are
byte-identical either way (see EXPERIMENTS.md, \"Distributed runs\").
With `--dispatch daemon:tcp://…` the cells are submitted as a job to a
persistent `bobw serve` daemon instead.

`bobw serve` runs the persistent experiment service: submit jobs with
`bobw submit`, stream results with `bobw watch`, list with `bobw jobs`
(add `--matrix` for the pooled resilience matrix over completed jobs),
and query the metrics plane with `bobw serve --status --connect URL`.
Set BOBW_SECRET (or pass --secret-file) on daemon, workers, and clients
to require authenticated handshakes (see EXPERIMENTS.md, \"Service
mode\").
";

/// Runs the CLI; returns the text to print or a usage error.
pub fn run(args: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(USAGE.to_string());
    };
    let opts = parse_options(rest)?;
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        "topology" => cmd_topology(&opts),
        "failover" => cmd_failover(&opts),
        "worker" => cmd_worker(&opts),
        "serve" => cmd_serve(&opts),
        "submit" => cmd_submit(&opts),
        "watch" => cmd_watch(&opts),
        "jobs" => cmd_jobs(&opts),
        "catchment" => cmd_catchment(&opts),
        "inspect" => cmd_inspect(&opts),
        "traceroute" => cmd_traceroute(&opts),
        "scenario" => cmd_scenario(&opts),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn cmd_topology(opts: &Options) -> Result<String, String> {
    let cfg = opts.scale_config()?;
    let tb = Testbed::new(cfg);
    if opts.get("json").is_some() {
        return serde_json::to_string_pretty(&tb.topo).map_err(|e| e.to_string());
    }
    let mut kinds: BTreeMap<String, usize> = BTreeMap::new();
    for n in tb.topo.nodes() {
        *kinds.entry(format!("{:?}", n.kind)).or_default() += 1;
    }
    let mut out = format!(
        "topology: {} nodes, {} links, connected: {}\n",
        tb.topo.len(),
        tb.topo.link_count(),
        tb.topo.is_connected()
    );
    for (k, v) in kinds {
        out.push_str(&format!("  {k:<24} {v}\n"));
    }
    out.push_str("sites:\n");
    for site in tb.cdn.sites() {
        let node = tb.cdn.node(site);
        out.push_str(&format!(
            "  {:<5} {} in {} ({} neighbors)\n",
            tb.cdn.name(site),
            node,
            tb.cdn.spec(site).region,
            tb.topo.neighbors(node).len()
        ));
    }
    Ok(out)
}

/// Renders the traffic layer's observation of a run (one line), empty
/// when the experiment ran without `--traffic on`.
fn traffic_line(t: Option<&TrafficSummary>) -> String {
    match t {
        None => String::new(),
        Some(s) => {
            let scrub = if s.scrubbed > 0.0 {
                format!(", scrubbed {}", percent(s.scrubbed_fraction()))
            } else {
                String::new()
            };
            format!(
                "traffic: peak util {:.2}x -> {:.2}x, shed {}, unserved {}{scrub}, \
                 {} resteers over {} ticks\n",
                s.peak_before(),
                s.peak_after(),
                percent(s.shed_fraction()),
                percent(s.unserved_fraction()),
                s.resteers,
                s.ticks,
            )
        }
    }
}

fn cmd_failover(opts: &Options) -> Result<String, String> {
    let cfg = opts.scale_config()?;
    let tb = Testbed::new(cfg);
    let technique = opts.technique()?;
    let site_name = opts.get("site").unwrap_or("bos");
    if site_name == "all" {
        return cmd_failover_all(opts, &tb, &technique);
    }
    let site = tb
        .cdn
        .by_name(site_name)
        .ok_or_else(|| format!("unknown site {site_name:?}"))?;
    let r = run_failover(&tb, &technique, site);
    let recon = Cdf::new(r.reconnection_secs());
    let fail = Cdf::new(r.failover_secs());
    Ok(format!(
        "failover drill: technique={} site={} ({:?})\n\
         targets: {} candidates, {} selected, {} controllable ({} control)\n\
         reconnection: p50 {:.1}s  p90 {:.1}s  max {:.1}s\n\
         failover:     p50 {:.1}s  p90 {:.1}s  max {:.1}s\n\
         never reconnected: {}\n{}",
        r.technique,
        r.site_name,
        tb.cfg.failure_mode,
        r.num_candidates,
        r.num_selected,
        r.num_controllable,
        percent(r.control_fraction()),
        recon.median().unwrap_or(f64::NAN),
        recon.quantile(0.9).unwrap_or(f64::NAN),
        recon.max().unwrap_or(f64::NAN),
        fail.median().unwrap_or(f64::NAN),
        fail.quantile(0.9).unwrap_or(f64::NAN),
        fail.max().unwrap_or(f64::NAN),
        percent(r.never_reconnected_fraction()),
        traffic_line(r.traffic.as_ref()),
    ))
}

/// `failover --site all`: the drill against every site, fanned over
/// `--jobs` local threads — or, with `--dispatch tcp://…|unix://…`,
/// served to remote `bobw worker` processes — through the deterministic
/// experiment runner. The per-site rows come out in site order whatever
/// the job count or dispatch mode.
fn cmd_failover_all(opts: &Options, tb: &Testbed, technique: &Technique) -> Result<String, String> {
    let jobs = opts.jobs()?;
    let mut dispatch = match opts.get("dispatch") {
        None | Some("local") => bobw_bench::Dispatch::local(jobs),
        Some(arg) => {
            let d = bobw_bench::Dispatch::from_arg(arg, jobs)?;
            if let Some(ep) = d.endpoint() {
                eprintln!(
                    "serving cells on {ep} — attach workers with: bobw worker --connect {ep}"
                );
            }
            d
        }
    };
    let (results, _) = bobw_bench::run_technique_all_sites_dispatch(tb, technique, &mut dispatch)?;
    let label = match (dispatch.endpoint(), opts.get("dispatch")) {
        (Some(ep), _) => format!("dispatch {ep}"),
        (None, Some(arg)) if arg.starts_with("daemon:") => format!("dispatch {arg}"),
        _ => format!("{jobs} jobs"),
    };
    dispatch.finish();
    let mut out = format!(
        "failover drill: technique={} site=all ({:?}, {label})\n",
        technique.name(),
        tb.cfg.failure_mode,
    );
    let with_traffic = results.iter().any(|r| r.traffic.is_some());
    out.push_str(&format!(
        "{:<6} {:>6} {:>10} {:>10} {:>8}",
        "site", "ctrl", "recon p50", "fail p50", "never"
    ));
    if with_traffic {
        out.push_str(&format!(" {:>10} {:>6}", "peak util", "shed"));
    }
    out.push('\n');
    for r in &results {
        let recon = Cdf::new(r.reconnection_secs());
        let fail = Cdf::new(r.failover_secs());
        out.push_str(&format!(
            "{:<6} {:>6} {:>9.1}s {:>9.1}s {:>8}",
            r.site_name,
            percent(r.control_fraction()),
            recon.median().unwrap_or(f64::NAN),
            fail.median().unwrap_or(f64::NAN),
            percent(r.never_reconnected_fraction()),
        ));
        if let Some(t) = &r.traffic {
            out.push_str(&format!(
                " {:>9.2}x {:>6}",
                t.peak_after(),
                percent(t.shed_fraction())
            ));
        }
        out.push('\n');
    }
    let all_fail: Vec<f64> = results.iter().flat_map(|r| r.failover_secs()).collect();
    let fc = Cdf::new(all_fail);
    out.push_str(&format!(
        "overall failover: p50 {:.1}s  p90 {:.1}s  max {:.1}s\n",
        fc.median().unwrap_or(f64::NAN),
        fc.quantile(0.9).unwrap_or(f64::NAN),
        fc.max().unwrap_or(f64::NAN),
    ));
    Ok(out)
}

/// `bobw worker`: attach to a coordinator (`bench --dispatch URL` or
/// `bobw failover --site all --dispatch URL`) and execute cells until it
/// shuts down. Blocks for the life of the connection.
fn cmd_worker(opts: &Options) -> Result<String, String> {
    let url = opts
        .get("connect")
        .ok_or("--connect is required (tcp://HOST:PORT or unix://PATH)")?;
    let mut cfg = bobw_dist::WorkerConfig::new(bobw_dist::Endpoint::parse(url)?);
    if let Some(t) = opts.get("threads") {
        cfg.threads = t
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("bad --threads {t:?} (integer >= 1)"))?;
    }
    if let Some(n) = opts.get("name") {
        cfg.name = n.to_string();
    }
    if let Some(secret) = client_secret(opts)? {
        cfg.secret = Some(secret);
    }
    eprintln!(
        "worker {}: connecting to {} ({} thread(s))",
        cfg.name, cfg.connect, cfg.threads
    );
    let done = bobw_dist::run_worker(&cfg)?;
    Ok(format!(
        "worker {}: coordinator closed, {done} cell(s) executed\n",
        cfg.name
    ))
}

/// Resolves the shared secret for service-mode commands: `--secret-file`
/// wins, otherwise the `BOBW_SECRET` environment variable, otherwise
/// none (open mode).
fn client_secret(opts: &Options) -> Result<Option<bobw_dist::AuthSecret>, String> {
    match opts.get("secret-file") {
        Some(path) => bobw_dist::AuthSecret::from_file(std::path::Path::new(path))
            .map(Some)
            .map_err(|e| format!("read --secret-file {path}: {e}")),
        None => Ok(bobw_dist::AuthSecret::from_env()),
    }
}

/// Connects to a daemon for the client-side service subcommands.
fn serve_client(opts: &Options, name: &str) -> Result<bobw_serve::ServeClient, String> {
    let url = opts
        .get("connect")
        .ok_or("--connect is required (tcp://HOST:PORT or unix://PATH)")?;
    let endpoint = bobw_dist::Endpoint::parse(url)?;
    let secret = client_secret(opts)?;
    bobw_serve::ServeClient::connect(&endpoint, name, secret.as_ref())
}

/// One human-readable line per streamed cell, for `submit --watch` and
/// `watch`.
fn describe_cell(index: u64, output: &bobw_dist::CellOutput) -> String {
    match output {
        bobw_dist::CellOutput::Failover(r, perf) => {
            let recon = Cdf::new(r.reconnection_secs());
            format!(
                "cell {index:>3}: {:<18} site {:<6} recon p50 {:>6.1}s  never {:>5}  ({:.2}s)",
                r.technique,
                r.site_name,
                recon.median().unwrap_or(f64::NAN),
                percent(r.never_reconnected_fraction()),
                perf.wall_micros as f64 / 1e6,
            )
        }
        bobw_dist::CellOutput::Control(c, perf) => format!(
            "cell {index:>3}: control site {:<6} near {:>4}  off-anycast {:>5}  ({:.2}s)",
            c.site_name,
            c.num_near,
            percent(c.frac_not_anycast_routed),
            perf.wall_micros as f64 / 1e6,
        ),
    }
}

/// `bobw serve`: run the persistent experiment daemon, or with
/// `--status --connect URL` query a running daemon's metrics plane.
fn cmd_serve(opts: &Options) -> Result<String, String> {
    if opts.get("status").is_some() {
        let mut client = serve_client(opts, "status")?;
        let json = client.status_json()?;
        return Ok(format!("{json}\n"));
    }
    let listen = opts.get("listen").unwrap_or("tcp://127.0.0.1:4400");
    let mut cfg = bobw_serve::ServeConfig::new(bobw_dist::Endpoint::parse(listen)?);
    if let Some(dir) = opts.get("state-dir") {
        cfg.state_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(path) = opts.get("secret-file") {
        cfg.secret = Some(
            bobw_dist::AuthSecret::from_file(std::path::Path::new(path))
                .map_err(|e| format!("read --secret-file {path}: {e}"))?,
        );
    }
    if let Some(dir) = opts.get("catalog") {
        cfg.catalog = std::path::PathBuf::from(dir);
    }
    bobw_dist::install_sigint_handler();
    let auth = if cfg.secret.is_some() {
        "authenticated"
    } else {
        "open (no BOBW_SECRET)"
    };
    let handle = bobw_serve::start(cfg).map_err(|e| format!("start daemon: {e}"))?;
    let ep = handle.endpoint().clone();
    eprintln!("bobw serve: listening on {ep} [{auth}]");
    eprintln!("  attach workers:  bobw worker --connect {ep}");
    eprintln!("  submit jobs:     bobw submit SPEC.json --connect {ep}");
    handle.join();
    Ok(format!("bobw serve: daemon on {ep} shut down\n"))
}

/// `bobw submit SPEC.json --connect URL [--watch]`: enqueue a job from a
/// declarative spec; with `--watch`, stream its cells to completion.
fn cmd_submit(opts: &Options) -> Result<String, String> {
    let Some(path) = opts.positional.first() else {
        return Err(format!("submit expects a SPEC.json path\n\n{USAGE}"));
    };
    let spec_json = std::fs::read_to_string(path).map_err(|e| format!("read spec {path}: {e}"))?;
    let mut client = serve_client(opts, "submit")?;
    let job_id = client.submit_spec(&spec_json)?;
    if opts.get("watch").is_none() {
        return Ok(format!(
            "job {job_id} queued — stream it with: bobw watch {job_id} --connect {}\n",
            opts.get("connect").unwrap_or("URL"),
        ));
    }
    eprintln!("job {job_id} queued, watching…");
    watch_to_string(&mut client, job_id)
}

/// `bobw watch JOB_ID --connect URL`: stream a job's cells (replaying
/// completed ones) until it reaches a terminal state.
fn cmd_watch(opts: &Options) -> Result<String, String> {
    let Some(raw) = opts.positional.first() else {
        return Err(format!("watch expects a JOB_ID\n\n{USAGE}"));
    };
    let job_id: u64 = raw
        .parse()
        .map_err(|_| format!("bad JOB_ID {raw:?} (integer)"))?;
    let mut client = serve_client(opts, "watch")?;
    watch_to_string(&mut client, job_id)
}

fn watch_to_string(client: &mut bobw_serve::ServeClient, job_id: u64) -> Result<String, String> {
    let mut out = String::new();
    let mut cells = 0u64;
    let (state, error) = client.watch(job_id, |index, output| {
        let line = describe_cell(index, &output);
        eprintln!("{line}");
        out.push_str(&line);
        out.push('\n');
        cells += 1;
    })?;
    out.push_str(&format!(
        "job {job_id}: {} ({cells} cell(s))\n",
        state.as_str()
    ));
    match state {
        bobw_serve::JobState::Done => Ok(out),
        _ => Err(error.unwrap_or_else(|| format!("job {job_id} ended {}", state.as_str()))),
    }
}

/// `bobw jobs --connect URL [--matrix]`: list the daemon's jobs, or with
/// `--matrix` print the resilience matrix over completed jobs.
fn cmd_jobs(opts: &Options) -> Result<String, String> {
    let mut client = serve_client(opts, "jobs")?;
    if opts.get("matrix").is_some() {
        let json = client.matrix_json()?;
        return Ok(format!("{json}\n"));
    }
    let rows = client.jobs()?;
    if rows.is_empty() {
        return Ok("no jobs\n".into());
    }
    let mut out = format!("{:<5} {:<8} {:>10}  {}\n", "id", "state", "cells", "name");
    for row in &rows {
        out.push_str(&format!(
            "{:<5} {:<8} {:>4}/{:<5}  {}{}\n",
            row.id,
            row.state,
            row.cells_done,
            row.cells_total,
            row.name,
            row.error
                .as_deref()
                .map(|e| format!("  [{e}]"))
                .unwrap_or_default(),
        ));
    }
    Ok(out)
}

/// `bobw scenario list|validate|run`: the declarative fault-scenario
/// catalog (see EXPERIMENTS.md, "Scenario catalog").
fn cmd_scenario(opts: &Options) -> Result<String, String> {
    let Some((verb, rest)) = opts.positional.split_first() else {
        return Err(format!("scenario expects list|validate|run\n\n{USAGE}"));
    };
    let catalog =
        || std::path::PathBuf::from(opts.get("catalog").unwrap_or(bobw_scenario::CATALOG_DIR));
    match verb.as_str() {
        "list" => {
            let dir = catalog();
            let mut out = format!("scenario catalog at {}:\n", dir.display());
            for path in bobw_scenario::catalog_files(&dir)? {
                let s = bobw_scenario::load_file(&path)?;
                out.push_str(&format!(
                    "  {:<22} site {:<6} {:>2} events  {}\n",
                    s.name,
                    s.site,
                    s.events.len(),
                    s.description
                ));
            }
            Ok(out)
        }
        "validate" => {
            let files: Vec<std::path::PathBuf> = if rest.is_empty() {
                bobw_scenario::catalog_files(&catalog())?
            } else {
                rest.iter().map(std::path::PathBuf::from).collect()
            };
            if files.is_empty() {
                return Err("no scenario files to validate".into());
            }
            let cfg = opts.scale_config()?;
            let graceful = matches!(cfg.failure_mode, FailureMode::GracefulWithdrawal);
            let tb = Testbed::new(cfg);
            let mut out = String::new();
            for path in &files {
                let s = bobw_scenario::load_file(path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                // "$site" scenarios must compile for every grid cell, so
                // check each binding; pinned ones get their named site.
                let measured: Vec<SiteId> = if s.site == "$site" {
                    tb.cdn.sites().collect()
                } else {
                    vec![tb
                        .cdn
                        .by_name(&s.site)
                        .ok_or_else(|| format!("{}: unknown site {:?}", path.display(), s.site))?]
                };
                let mut ops = 0;
                for site in measured {
                    let compiled =
                        bobw_scenario::compile(&s, &tb.topo, &tb.cdn, &tb.rng, site, graceful)
                            .map_err(|e| {
                                format!("{}: site {}: {e}", path.display(), tb.cdn.name(site))
                            })?;
                    ops = compiled.events.len();
                }
                out.push_str(&format!(
                    "  {:<40} ok ({} events -> {} ops)\n",
                    path.display(),
                    s.events.len(),
                    ops
                ));
            }
            out.push_str(&format!("{} scenario(s) valid\n", files.len()));
            Ok(out)
        }
        "run" => {
            let [file] = rest else {
                return Err("scenario run expects exactly one FILE".into());
            };
            let scenario = bobw_scenario::load_file(&std::path::PathBuf::from(file))?;
            let mut cfg = opts.scale_config()?;
            // Catalog convention: `damping-*` scenarios study the
            // interaction with route-flap damping, so it comes on.
            if scenario.wants_damping() && cfg.timing.flap_damping.is_none() {
                cfg.timing.flap_damping = Some(bobw_bgp::DampingConfig::default());
            }
            cfg.scenario = Some(scenario.clone());
            let tb = Testbed::new(cfg);
            let technique = opts.technique()?;
            let site_name = match opts.get("site") {
                Some(n) => n.to_string(),
                None if scenario.site != "$site" => scenario.site.clone(),
                None => "bos".to_string(),
            };
            let site = tb
                .cdn
                .by_name(&site_name)
                .ok_or_else(|| format!("unknown site {site_name:?}"))?;
            let r = run_failover(&tb, &technique, site);
            let recon = Cdf::new(r.reconnection_secs());
            let fail = Cdf::new(r.failover_secs());
            Ok(format!(
                "scenario {}: {}\n\
                 technique={} site={} scale={}\n\
                 targets: {} selected, {} controllable\n\
                 reconnection: p50 {:.1}s  p90 {:.1}s  max {:.1}s\n\
                 failover:     p50 {:.1}s  p90 {:.1}s  max {:.1}s\n\
                 never reconnected: {}\n{}",
                scenario.name,
                scenario.description,
                r.technique,
                r.site_name,
                opts.get("scale").unwrap_or("quick"),
                r.num_selected,
                r.num_controllable,
                recon.median().unwrap_or(f64::NAN),
                recon.quantile(0.9).unwrap_or(f64::NAN),
                recon.max().unwrap_or(f64::NAN),
                fail.median().unwrap_or(f64::NAN),
                fail.quantile(0.9).unwrap_or(f64::NAN),
                fail.max().unwrap_or(f64::NAN),
                percent(r.never_reconnected_fraction()),
                traffic_line(r.traffic.as_ref()),
            ))
        }
        other => Err(format!(
            "unknown scenario verb {other:?} (list|validate|run)"
        )),
    }
}

fn cmd_catchment(opts: &Options) -> Result<String, String> {
    let cfg = opts.scale_config()?;
    let tb = Testbed::new(cfg);
    let mut out = String::new();
    match opts.get("prepend") {
        None => {
            // Pure anycast catchment sizes.
            out.push_str("anycast catchment (clients per site):\n");
            let r = measure_control(&tb, SiteId(0), &[]);
            let _ = r; // anycast row computed below per site
                       // One converged anycast run, counted via control measurement of
                       // each site's not-routed fraction is awkward; do it directly.
            let rng = &tb.rng;
            let mut sim = Standalone::with_queue_capacity(
                &tb.topo,
                BgpTimingConfig::instant(),
                rng,
                tb.queue_capacity_hint(),
            );
            let prefix: Prefix = tb.cfg.plan.anycast_probe;
            for &s in tb.cdn.site_nodes() {
                sim.announce(s, prefix, OriginConfig::plain());
            }
            sim.run_to_idle(tb.cfg.max_events);
            let env = ForwardEnv {
                topo: &tb.topo,
                bgp: sim.sim(),
                down: &[],
            };
            let mut counts = vec![0usize; tb.cdn.num_sites()];
            let mut lost = 0usize;
            for c in tb.topo.client_nodes() {
                match bobw_dataplane::catchment(&env, &tb.cdn, c, prefix.addr_at(1)) {
                    Some(site) => counts[site.index()] += 1,
                    None => lost += 1,
                }
            }
            for site in tb.cdn.sites() {
                out.push_str(&format!(
                    "  {:<5} {}\n",
                    tb.cdn.name(site),
                    counts[site.index()]
                ));
            }
            out.push_str(&format!("  (unreachable: {lost})\n"));
        }
        Some(k) => {
            let k: u8 = k.parse().map_err(|_| format!("bad --prepend {k:?}"))?;
            out.push_str(&format!(
                "proactive-prepending control per site (backups prepend {k}):\n"
            ));
            for site in tb.cdn.sites() {
                let r = measure_control(&tb, site, &[k]);
                out.push_str(&format!(
                    "  {:<5} not-anycast-routed {:>4}, steered {:>4}\n",
                    r.site_name,
                    percent(r.frac_not_anycast_routed),
                    percent(r.steered[0].1),
                ));
            }
        }
    }
    Ok(out)
}

/// Builds a converged anycast world for inspect/traceroute.
fn converged_world(opts: &Options) -> Result<(Testbed, Standalone), String> {
    let cfg = opts.scale_config()?;
    let tb = Testbed::new(cfg);
    let mut sim = Standalone::with_queue_capacity(
        &tb.topo,
        tb.cfg.timing.clone(),
        &tb.rng,
        tb.queue_capacity_hint(),
    );
    let plan = tb.cfg.plan.clone();
    for &s in tb.cdn.site_nodes() {
        sim.announce(s, plan.anycast_probe, OriginConfig::plain());
    }
    sim.announce(tb.cdn.site_nodes()[0], plan.specific, OriginConfig::plain());
    for (i, site) in tb.cdn.sites().enumerate() {
        if i > 0 {
            sim.announce(tb.cdn.node(site), plan.specific, OriginConfig::prepended(3));
        }
    }
    sim.run_to_idle(tb.cfg.max_events);
    Ok((tb, sim))
}

fn parse_node(opts: &Options, key: &str) -> Result<NodeId, String> {
    let v = opts
        .get(key)
        .ok_or_else(|| format!("--{key} is required"))?;
    let v = v.strip_prefix('n').unwrap_or(v);
    v.parse::<u32>()
        .map(NodeId)
        .map_err(|_| format!("bad --{key} {v:?} (node id like 17 or n17)"))
}

fn parse_prefix(opts: &Options) -> Result<Prefix, String> {
    opts.get("prefix")
        .ok_or_else(|| "--prefix is required".to_string())?
        .parse()
        .map_err(|e| format!("bad --prefix: {e}"))
}

fn cmd_inspect(opts: &Options) -> Result<String, String> {
    let (tb, sim) = converged_world(opts)?;
    let node = parse_node(opts, "node")?;
    if node.index() >= tb.topo.len() {
        return Err(format!("node {node} out of range (0..{})", tb.topo.len()));
    }
    let prefix = parse_prefix(opts)?;
    let mut out = String::new();
    out.push_str(&format!(
        "(world: anycast on {} from all sites; {} unicast at {} with backups prepending 3)\n",
        tb.cfg.plan.anycast_probe,
        tb.cfg.plan.specific,
        tb.cdn.name(SiteId(0)),
    ));
    out.push_str(&dump_rib(sim.sim(), node, &prefix));
    Ok(out)
}

fn cmd_traceroute(opts: &Options) -> Result<String, String> {
    let (tb, sim) = converged_world(opts)?;
    let from = parse_node(opts, "from")?;
    if from.index() >= tb.topo.len() {
        return Err(format!("node {from} out of range (0..{})", tb.topo.len()));
    }
    let prefix = parse_prefix(opts)?;
    let env = ForwardEnv {
        topo: &tb.topo,
        bgp: sim.sim(),
        down: &[],
    };
    let (delivery, path) = walk_with_path(&env, from, prefix.addr_at(1));
    let mut out = format!(
        "traceroute from {from} to {}:\n",
        bobw_net::fmt_addr(prefix.addr_at(1))
    );
    let mut cumulative = SimDuration::ZERO;
    for (hop, pair) in path.windows(2).enumerate() {
        cumulative += tb.topo.delay(pair[0], pair[1]).expect("linked");
        let n = tb.topo.node(pair[1]);
        let site = tb
            .cdn
            .site_at(pair[1])
            .map(|s| format!(" [site {}]", tb.cdn.name(s)))
            .unwrap_or_default();
        out.push_str(&format!(
            "  {:>2}. {} {} ({:?}){site}  {:.2} ms\n",
            hop + 1,
            n.id,
            n.asn,
            n.kind,
            cumulative.as_secs_f64() * 1000.0
        ));
    }
    out.push_str(&format!("outcome: {delivery:?}\n"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn option_parsing() {
        let o = parse_options(&s(&["--scale", "quick", "pos", "--seed", "7"])).unwrap();
        assert_eq!(o.get("scale"), Some("quick"));
        assert_eq!(o.seed().unwrap(), 7);
        assert_eq!(o.positional, vec!["pos"]);
        assert!(parse_options(&s(&["--seed"])).is_err());
    }

    #[test]
    fn technique_parsing_round_trips() {
        for name in [
            "unicast",
            "anycast",
            "proactive-superprefix",
            "reactive-anycast",
            "proactive-prepending-3",
            "proactive-prepending-5-selective",
            "proactive-med-100",
            "proactive-noexport-3",
            "combined",
        ] {
            let t = parse_technique(name).unwrap();
            assert_eq!(t.name(), name, "round trip failed for {name}");
        }
        assert!(parse_technique("bogus").is_err());
        assert!(parse_technique("proactive-prepending-x").is_err());
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&s(&["help"])).unwrap().contains("USAGE"));
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn topology_summary_runs() {
        let out = run(&s(&["topology", "--scale", "quick", "--seed", "3"])).unwrap();
        assert!(out.contains("topology:"));
        assert!(out.contains("sea1"));
        assert!(out.contains("connected: true"));
    }

    #[test]
    fn bad_scale_is_reported() {
        let err = run(&s(&["topology", "--scale", "galactic"])).unwrap_err();
        assert!(err.contains("galactic"));
    }

    #[test]
    fn failover_all_sites_is_jobs_independent() {
        let base = [
            "failover",
            "--site",
            "all",
            "--scale",
            "quick",
            "--seed",
            "5",
            "--technique",
            "anycast",
            "--jobs",
        ];
        let mut serial = base.to_vec();
        serial.push("1");
        let mut parallel = base.to_vec();
        parallel.push("4");
        let a = run(&s(&serial)).unwrap();
        let b = run(&s(&parallel)).unwrap();
        // Identical modulo the reported job count itself.
        assert_eq!(a.replace("1 jobs", "N jobs"), b.replace("4 jobs", "N jobs"));
        assert!(a.contains("site=all"));
        let err = run(&s(&[
            "failover", "--site", "all", "--scale", "quick", "--jobs", "0",
        ]))
        .unwrap_err();
        assert!(err.contains("--jobs"));
    }

    #[test]
    fn scenario_verbs() {
        assert!(run(&s(&["scenario"])).is_err());
        assert!(run(&s(&["scenario", "teleport"])).is_err());
        // An inline catalog exercises list + validate + run end to end.
        let dir = std::env::temp_dir().join("bobw-cli-scenario-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("crash.json");
        let scenario = bobw_scenario::Scenario::site_failure(2.0, 0);
        std::fs::write(&file, serde_json::to_string_pretty(&scenario).unwrap()).unwrap();
        let listed = run(&s(&[
            "scenario",
            "list",
            "--catalog",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(listed.contains("site-failure"), "{listed}");
        let validated = run(&s(&[
            "scenario",
            "validate",
            "--catalog",
            dir.to_str().unwrap(),
            "--scale",
            "quick",
        ]))
        .unwrap();
        assert!(validated.contains("1 scenario(s) valid"), "{validated}");
        let ran = run(&s(&[
            "scenario",
            "run",
            file.to_str().unwrap(),
            "--technique",
            "anycast",
            "--site",
            "bos",
            "--scale",
            "quick",
        ]))
        .unwrap();
        assert!(ran.contains("scenario site-failure"), "{ran}");
        assert!(ran.contains("site=bos"), "{ran}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traffic_flag_adds_load_columns() {
        let base = [
            "failover",
            "--site",
            "bos",
            "--scale",
            "quick",
            "--seed",
            "5",
            "--technique",
            "reactive-anycast",
        ];
        let plain = run(&s(&base)).unwrap();
        assert!(!plain.contains("peak util"), "{plain}");
        let mut with = base.to_vec();
        with.extend(["--traffic", "on"]);
        let loaded = run(&s(&with)).unwrap();
        assert!(loaded.contains("peak util"), "{loaded}");
        assert!(loaded.contains("resteers"), "{loaded}");
        // The probe-side report is identical either way: the traffic
        // layer is observational.
        let head = |t: &str| t.lines().take(5).collect::<Vec<_>>().join("\n");
        assert_eq!(head(&plain), head(&loaded));
        let err = run(&s(&[
            "failover",
            "--scale",
            "quick",
            "--traffic",
            "sideways",
        ]))
        .unwrap_err();
        assert!(err.contains("--traffic"), "{err}");
    }

    #[test]
    fn inspect_requires_node() {
        let err = run(&s(&["inspect", "--prefix", "184.164.244.0/24"])).unwrap_err();
        assert!(err.contains("--node is required"));
    }

    #[test]
    fn bool_flags_need_no_value() {
        let o = parse_options(&s(&["--json", "--watch", "--matrix", "--status", "pos"])).unwrap();
        for key in ["json", "watch", "matrix", "status"] {
            assert_eq!(o.get(key), Some(""), "--{key} should parse standalone");
        }
        assert_eq!(o.positional, vec!["pos"]);
    }

    /// submit/watch/jobs/serve-status against a real in-process daemon.
    /// The daemon and its worker are deliberately left running (detached):
    /// quitting raises the process-wide interrupt flag, which would poison
    /// concurrently running tests in this binary.
    #[test]
    fn service_subcommands_roundtrip() {
        let cfg =
            bobw_serve::ServeConfig::new(bobw_dist::Endpoint::parse("tcp://127.0.0.1:0").unwrap());
        let handle = bobw_serve::start(cfg).unwrap();
        let url = handle.endpoint().to_string();
        {
            let ep = handle.endpoint().clone();
            std::thread::spawn(move || {
                let _ = bobw_dist::run_worker(&bobw_dist::WorkerConfig::new(ep));
            });
        }
        let site = ExperimentConfig::quick(11).gen.sites[0].name.clone();
        let dir = std::env::temp_dir().join(format!("bobw-cli-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.json");
        std::fs::write(
            &spec,
            format!(r#"{{"techniques":["anycast"],"sites":["{site}"],"seed":11}}"#),
        )
        .unwrap();

        let watched = run(&s(&[
            "submit",
            spec.to_str().unwrap(),
            "--connect",
            &url,
            "--watch",
        ]))
        .unwrap();
        assert!(watched.contains("done (1 cell(s))"), "{watched}");
        assert!(watched.contains("anycast"), "{watched}");

        let listed = run(&s(&["jobs", "--connect", &url])).unwrap();
        assert!(listed.contains("done"), "{listed}");
        let id = listed
            .lines()
            .nth(1)
            .and_then(|l| l.split_whitespace().next())
            .unwrap()
            .to_string();

        // A replay watch of the finished job streams the same cell again.
        let replay = run(&s(&["watch", &id, "--connect", &url])).unwrap();
        assert!(replay.contains("done (1 cell(s))"), "{replay}");

        let matrix = run(&s(&["jobs", "--matrix", "--connect", &url])).unwrap();
        assert!(matrix.contains("anycast"), "{matrix}");
        assert!(matrix.contains(&site), "{matrix}");

        let status = run(&s(&["serve", "--status", "--connect", &url])).unwrap();
        assert!(status.contains("jobs_done"), "{status}");

        // Bad specs are rejected at the door, not at run time.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, r#"{"techniques":["warpdrive"]}"#).unwrap();
        let err = run(&s(&["submit", bad.to_str().unwrap(), "--connect", &url])).unwrap_err();
        assert!(err.contains("warpdrive"), "{err}");

        assert!(run(&s(&["watch", "oops", "--connect", &url])).is_err());
        assert!(run(&s(&["submit", "--connect", &url])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
