//! Route-collector forensics (Appendices A & B): watch a withdrawal and a
//! fresh anycast announcement through the eyes of a RIS-style collector,
//! run the paper's burst estimator, and compare per-peer convergence
//! against per-peer propagation.
//!
//! ```sh
//! cargo run --release --example collector_forensics
//! ```

use bobw::bgp::{BgpTimingConfig, OriginConfig, Standalone};
use bobw::event::RngFactory;
use bobw::measure::{
    estimate_event_time, per_peer_convergence, per_peer_propagation, pick_collector_peers, Cdf,
    Collector,
};
use bobw::net::Prefix;
use bobw::topology::{generate, GenConfig};

fn main() {
    let rng = RngFactory::new(21);
    let (topo, cdn) = generate(&GenConfig::small(), &rng);
    let peers = pick_collector_peers(&topo, 3);
    let collector = Collector::new(peers, &rng);
    println!(
        "Internet: {} ASes; collector peers with full tables: {}",
        topo.len(),
        collector.peers().len()
    );
    let prefix: Prefix = "184.164.244.0/24".parse().unwrap();
    let site = cdn.node(cdn.by_name("atl").unwrap());

    // --- Announcement: how fast does the world learn a new prefix? ---
    let mut sim = Standalone::new(&topo, BgpTimingConfig::default(), &rng);
    sim.sim_mut().set_record_history(true);
    sim.announce(site, prefix, OriginConfig::plain());
    sim.run_to_idle(50_000_000);
    let feed = collector.feed(sim.sim().history(), prefix);
    println!("\n== Announcement from 'atl' ==");
    println!("collector saw {} updates", feed.len());
    let est = estimate_event_time(&feed, false).expect("burst found");
    println!("burst estimator places the announcement at {est}");
    let prop: Vec<f64> = per_peer_propagation(&feed, est)
        .into_iter()
        .map(|(_, d)| d.as_secs_f64())
        .collect();
    let pc = Cdf::new(prop);
    println!(
        "per-peer propagation: p50 {:.1}s  p90 {:.1}s  max {:.1}s",
        pc.quantile(0.5).unwrap(),
        pc.quantile(0.9).unwrap(),
        pc.max().unwrap()
    );

    // --- Withdrawal: the slow path. ---
    sim.sim_mut().take_history();
    let t0 = sim.now();
    sim.withdraw(site, prefix);
    sim.run_to_idle(50_000_000);
    let feed = collector.feed(sim.sim().history(), prefix);
    println!("\n== Withdrawal from 'atl' (true instant: {t0}) ==");
    println!(
        "collector saw {} updates ({} withdrawals, {} path-exploration announcements)",
        feed.len(),
        feed.iter().filter(|u| u.is_withdrawal()).count(),
        feed.iter().filter(|u| !u.is_withdrawal()).count()
    );
    let est = estimate_event_time(&feed, true).expect("burst found");
    println!(
        "burst estimator places the withdrawal at {est} (error {:.1}s; paper validates ≤10s median)",
        (est.as_nanos() as f64 - t0.as_nanos() as f64).abs() / 1e9
    );
    let conv: Vec<f64> = per_peer_convergence(&feed, est)
        .into_iter()
        .map(|(_, d)| d.as_secs_f64())
        .collect();
    let cc = Cdf::new(conv);
    println!(
        "per-peer convergence: p50 {:.1}s  p90 {:.1}s  max {:.1}s",
        cc.quantile(0.5).unwrap(),
        cc.quantile(0.9).unwrap(),
        cc.max().unwrap()
    );
    println!(
        "\nThe withdrawal converges an order of magnitude slower than the announcement \
         propagates — path exploration re-advertises doomed routes, MRAI paces every \
         correction round. This asymmetry is the entire case for reactive-anycast over \
         proactive-superprefix (§3, §4)."
    );
}
