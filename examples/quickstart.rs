//! Quickstart: fail one CDN site under each redirection technique and
//! compare how quickly clients get back to service.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bobw::core::{run_failover, ExperimentConfig, Technique, Testbed};
use bobw::event::SimDuration;
use bobw::measure::Cdf;

fn main() {
    // A small Internet (a few hundred ASes) hosting the paper's 8-site CDN.
    let mut cfg = ExperimentConfig::quick(42);
    cfg.targets_per_site = 120;
    cfg.probe.duration = SimDuration::from_secs(240);
    let testbed = Testbed::new(cfg);
    println!(
        "Internet: {} ASes, {} links; CDN sites: {}",
        testbed.topo.len(),
        testbed.topo.link_count(),
        (0..testbed.cdn.num_sites())
            .map(|i| testbed
                .cdn
                .name(bobw::topology::SiteId(i as u8))
                .to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Fail Boston under each technique and compare.
    let site = testbed.site("bos");
    println!("\nFailing site 'bos' under each technique:\n");
    println!(
        "{:<26} {:>8} {:>12} {:>12} {:>10}",
        "technique", "targets", "recon p50", "failover p50", "control"
    );
    for technique in [
        Technique::Anycast,
        Technique::ReactiveAnycast,
        Technique::ProactivePrepending {
            prepends: 3,
            selective: false,
        },
        Technique::ProactiveSuperprefix,
        Technique::Combined,
    ] {
        let r = run_failover(&testbed, &technique, site);
        let recon = Cdf::new(r.reconnection_secs());
        let fail = Cdf::new(r.failover_secs());
        println!(
            "{:<26} {:>8} {:>11.1}s {:>11.1}s {:>9.0}%",
            r.technique,
            r.num_controllable,
            recon.median().unwrap_or(f64::NAN),
            fail.median().unwrap_or(f64::NAN),
            r.control_fraction() * 100.0
        );
    }

    println!(
        "\nReading the table: reactive-anycast and proactive-prepending recover nearly as \
         fast as anycast while retaining (all or most of) unicast's steering control — \
         the paper's 'best of both worlds'. proactive-superprefix controls everything \
         but pays for it with BGP withdrawal convergence."
    );
}
