//! Site-failure drill: the operational scenario from the paper's
//! introduction. A CDN runs reactive-anycast; one site suffers an outage;
//! we watch the failure unfold target by target — disconnection, first
//! reconnection at a backup site, bouncing, and stabilization — the way an
//! on-call engineer would read it off the probe logs.
//!
//! ```sh
//! cargo run --release --example site_failure_drill
//! ```

use bobw::core::{run_failover, ExperimentConfig, Technique, Testbed};
use bobw::event::SimDuration;
use bobw::measure::Cdf;

fn main() {
    let mut cfg = ExperimentConfig::quick(1234);
    cfg.targets_per_site = 150;
    cfg.probe.duration = SimDuration::from_secs(240);
    let testbed = Testbed::new(cfg);
    let failed = testbed.site("atl");

    println!("== Site failure drill: 'atl' goes dark under reactive-anycast ==\n");
    let r = run_failover(&testbed, &Technique::ReactiveAnycast, failed);

    // Aggregate view.
    let recon = Cdf::new(r.reconnection_secs());
    let fail = Cdf::new(r.failover_secs());
    println!(
        "{} targets were being served by atl when it failed.",
        r.num_controllable
    );
    println!(
        "reconnection: p50 {:.1}s  p90 {:.1}s  p99 {:.1}s",
        recon.quantile(0.5).unwrap_or(f64::NAN),
        recon.quantile(0.9).unwrap_or(f64::NAN),
        recon.quantile(0.99).unwrap_or(f64::NAN),
    );
    println!(
        "failover:     p50 {:.1}s  p90 {:.1}s  p99 {:.1}s",
        fail.quantile(0.5).unwrap_or(f64::NAN),
        fail.quantile(0.9).unwrap_or(f64::NAN),
        fail.quantile(0.99).unwrap_or(f64::NAN),
    );

    // Where did clients land?
    let mut per_site = std::collections::BTreeMap::new();
    for o in &r.outcomes {
        if let Some(s) = o.final_site {
            *per_site
                .entry(testbed.cdn.name(s).to_string())
                .or_insert(0u32) += 1;
        }
    }
    println!("\nFinal landing sites:");
    for (site, count) in &per_site {
        println!("  {site:<6} {count}");
    }

    // Bouncing behaviour (§5.4.1: most targets bounce once or twice, with
    // little unreachability in between).
    let mut bounce_hist = std::collections::BTreeMap::new();
    let mut with_losses = 0;
    for o in &r.outcomes {
        *bounce_hist.entry(o.bounces.min(4)).or_insert(0u32) += 1;
        if o.losses_after_reconnect > 0 {
            with_losses += 1;
        }
    }
    println!("\nSite switches after first reconnection (bounces):");
    for (b, count) in &bounce_hist {
        let label = if *b >= 4 {
            "4+".to_string()
        } else {
            b.to_string()
        };
        println!("  {label:<3} bounces: {count} targets");
    }
    println!(
        "{} of {} targets saw additional packet loss after reconnecting.",
        with_losses,
        r.outcomes.len()
    );

    // The §5.4.1 argument for short connections.
    let gaps: Vec<f64> = r
        .outcomes
        .iter()
        .filter_map(|o| o.gap())
        .map(|d| d.as_secs_f64())
        .collect();
    if !gaps.is_empty() {
        let g = Cdf::new(gaps);
        println!(
            "\nreconnection→failover gap: p50 {:.1}s, p90 {:.1}s — short connections \
             established after reconnection are unlikely to be interrupted.",
            g.quantile(0.5).unwrap_or(f64::NAN),
            g.quantile(0.9).unwrap_or(f64::NAN)
        );
    }
}
