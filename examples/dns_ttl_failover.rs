//! Why DNS alone cannot save unicast (§1, §2): simulate the client
//! population's failover under different TTLs and TTL-violation rates, and
//! put the numbers next to BGP-layer failover.
//!
//! ```sh
//! cargo run --release --example dns_ttl_failover
//! ```

use bobw::dns::{
    Authoritative, CacheStatus, ClientPopulation, DnsFailoverConfig, RecursiveResolver,
};
use bobw::event::{RngFactory, SimDuration, SimTime};
use bobw::measure::Cdf;
use bobw::net::{NodeId, Prefix};
use bobw::topology::SiteId;

fn main() {
    // --- Part 1: one client's eye view of a failure. ---
    println!("== One client, one failure ==");
    let prefixes: Vec<Prefix> = vec![
        "184.164.244.0/24".parse().unwrap(),
        "184.164.245.0/24".parse().unwrap(),
    ];
    let mut auth = Authoritative::new(prefixes, SimDuration::from_secs(20));
    let client = NodeId(7);
    auth.assign(client, SiteId(0));
    auth.set_fallback(client, vec![SiteId(0), SiteId(1)]);

    let mut resolver = RecursiveResolver::new(client, SimDuration::ZERO);
    let (ans, _) = resolver.query(&auth, SimTime::ZERO).unwrap();
    println!(
        "t=0s    resolved to site{} ({})",
        ans.site.0,
        fmt_addr(ans.addr)
    );

    auth.mark_failed(SiteId(0));
    println!("t=5s    site0 FAILS; CDN updates its authoritative answers");
    for t in [10u64, 15, 19, 20, 21] {
        match resolver.query(&auth, SimTime::from_secs(t)) {
            Some((a, CacheStatus::Hit)) => {
                let note = if auth.is_failed(a.site) {
                    " (still the dead site!)"
                } else {
                    ""
                };
                println!("t={t}s   cache HIT  -> site{}{note}", a.site.0)
            }
            Some((a, CacheStatus::StaleHit)) => {
                println!("t={t}s   STALE hit  -> site{} (TTL violation)", a.site.0)
            }
            Some((a, CacheStatus::Miss)) => {
                println!(
                    "t={t}s   re-query   -> site{} (finally a live site)",
                    a.site.0
                )
            }
            None => println!("t={t}s   no answer"),
        }
    }

    // --- Part 2: population-level failover distributions. ---
    println!("\n== Population failover (time until a client first uses a live address) ==");
    let rng = RngFactory::new(9);
    for (label, ttl, violators) in [
        (
            "TTL 600s, 25% violators (typical popular domain)",
            600u64,
            0.25,
        ),
        ("TTL 20s,  25% violators (Akamai-style)", 20, 0.25),
        ("TTL 20s,  fully compliant (best case)", 20, 0.0),
    ] {
        let cfg = DnsFailoverConfig {
            ttl: SimDuration::from_secs(ttl),
            violator_fraction: violators,
            ..Default::default()
        };
        let pop = ClientPopulation::sample(&cfg, 10_000, &rng.derive(label, 0));
        let cdf = Cdf::new(pop.sorted_secs());
        println!(
            "{label:<48} p50 {:>7.1}s  p90 {:>7.1}s  p99 {:>8.1}s",
            cdf.quantile(0.5).unwrap(),
            cdf.quantile(0.9).unwrap(),
            cdf.quantile(0.99).unwrap()
        );
    }
    println!(
        "\nCompare with BGP-layer failover (~10s median for anycast/reactive-anycast in \
         Figure 2): even aggressive TTLs leave a violator tail of many minutes, which is \
         the paper's case for fixing failover in routing, not in DNS."
    );
}

fn fmt_addr(a: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (a >> 24) & 0xff,
        (a >> 16) & 0xff,
        (a >> 8) & 0xff,
        a & 0xff
    )
}
