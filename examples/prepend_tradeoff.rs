//! The proactive-prepending tradeoff dial (§4, §5.4.2, Appendix C.2):
//! sweep the prepend count and watch control rise while failover slows —
//! then check which kind of site benefits (commercial-IX sea1 vs
//! university-hosted sea2).
//!
//! ```sh
//! cargo run --release --example prepend_tradeoff
//! ```

use bobw::core::{measure_control, run_failover, ExperimentConfig, Technique, Testbed};
use bobw::event::SimDuration;
use bobw::measure::Cdf;

fn main() {
    let mut cfg = ExperimentConfig::quick(77);
    cfg.targets_per_site = 120;
    cfg.probe.duration = SimDuration::from_secs(240);
    let testbed = Testbed::new(cfg);

    println!("== The prepend dial: control vs failover ==\n");

    // Control per prepend count, for the two Seattle sites.
    let prepend_counts = [1u8, 3, 5, 7];
    for site_name in ["sea1", "sea2"] {
        let site = testbed.site(site_name);
        let r = measure_control(&testbed, site, &prepend_counts);
        println!(
            "{site_name}: {:.0}% of nearby clients are NOT anycast-routed to it; steerable with:",
            r.frac_not_anycast_routed * 100.0
        );
        for (k, frac) in &r.steered {
            println!("    prepend {k}: {:>5.1}%", frac * 100.0);
        }
    }
    println!(
        "\nsea2 (university-hosted, behind the R&E fabric) holds control easily; sea1 \
         (commercial IX) cannot win clients whose upstreams prefer customer routes to \
         other sites no matter how much the backups prepend (Appendix C.1)."
    );

    // Failover per prepend count, aggregated over two sites.
    println!("\nFailover as the backups prepend more (failed site: slc):");
    let site = testbed.site("slc");
    for k in prepend_counts {
        let t = Technique::ProactivePrepending {
            prepends: k,
            selective: false,
        };
        let r = run_failover(&testbed, &t, site);
        let fail = Cdf::new(r.failover_secs());
        println!(
            "    prepend {k}: failover p50 {:>6.1}s  p90 {:>6.1}s  (control {:>4.0}%)",
            fail.quantile(0.5).unwrap_or(f64::NAN),
            fail.quantile(0.9).unwrap_or(f64::NAN),
            r.control_fraction() * 100.0
        );
    }
    println!(
        "\nLonger backup paths are less preferred during convergence, so more prepending \
         shifts the failover tail out — the Figure 5 tradeoff."
    );

    // The §4 recommendation: selective announcement to shared neighbors.
    println!("\nSelective prepending (only to neighbors shared with the intended site):");
    for selective in [false, true] {
        let t = Technique::ProactivePrepending {
            prepends: 3,
            selective,
        };
        let r = run_failover(&testbed, &t, site);
        let fail = Cdf::new(r.failover_secs());
        println!(
            "    selective={selective}: control {:>4.0}%  failover p50 {:>6.1}s  p90 {:>6.1}s  never-reconnected {:>4.1}%",
            r.control_fraction() * 100.0,
            fail.quantile(0.5).unwrap_or(f64::NAN),
            fail.quantile(0.9).unwrap_or(f64::NAN),
            r.never_reconnected_fraction() * 100.0
        );
    }
}
