//! An anycast "playbook" under attack (the use case of Rizvi et al.,
//! USENIX Security '22, which the paper cites as using techniques similar
//! to proactive-prepending): a site is being overwhelmed, and the operator
//! wants to *shed* most of its catchment onto other sites without taking it
//! fully offline — the flip side of failover.
//!
//! The knob is the same as the paper's §4: AS-path prepending at the
//! attacked site (instead of at the backups). We sweep the prepend count
//! and watch the site's catchment drain, then compare with the blunter
//! instrument of withdrawing entirely. The last section replays the sweep
//! against the demand-driven data plane (`bobw::traffic`): a regional
//! volumetric surge ticked through each catchment, showing how much
//! *load* (not just clients) each prepend level sheds off the site.
//!
//! ```sh
//! cargo run --release --example ddos_playbook
//! ```

use bobw::bgp::{OriginConfig, Standalone};
use bobw::core::{ExperimentConfig, Testbed};
use bobw::dataplane::{catchment, ForwardEnv};
use bobw::event::{SimDuration, SimTime};
use bobw::net::Prefix;
use bobw::topology::REGIONS;
use bobw::traffic::{Steering, Surge, TrafficConfig, TrafficSim};

fn main() {
    let testbed = Testbed::new(ExperimentConfig::quick(31));
    let topo = &testbed.topo;
    let cdn = &testbed.cdn;
    let prefix: Prefix = "184.164.247.0/24".parse().unwrap();
    let attacked = cdn.by_name("ams").unwrap();

    println!("== DDoS playbook: shed load from 'ams' by self-prepending ==\n");
    println!(
        "{:<22} {:>12} {:>16}",
        "announcement", "ams clients", "share of clients"
    );

    let total_clients = topo.client_nodes().count();
    for step in [0u8, 1, 2, 3, 5, 8] {
        let mut sim = Standalone::new(topo, testbed.cfg.timing.clone(), &testbed.rng);
        for site in cdn.sites() {
            let cfg = if site == attacked {
                OriginConfig::prepended(step)
            } else {
                OriginConfig::plain()
            };
            sim.announce(cdn.node(site), prefix, cfg);
        }
        sim.run_to_idle(testbed.cfg.max_events);
        let env = ForwardEnv {
            topo,
            bgp: sim.sim(),
            down: &[],
        };
        let kept = topo
            .client_nodes()
            .filter(|c| catchment(&env, cdn, *c, prefix.addr_at(1)) == Some(attacked))
            .count();
        println!(
            "{:<22} {:>12} {:>15.1}%",
            format!("prepend x{step}"),
            kept,
            100.0 * kept as f64 / total_clients as f64
        );
    }

    // The blunt instrument: withdraw entirely.
    {
        let mut sim = Standalone::new(topo, testbed.cfg.timing.clone(), &testbed.rng);
        for site in cdn.sites() {
            if site != attacked {
                sim.announce(cdn.node(site), prefix, OriginConfig::plain());
            }
        }
        sim.run_to_idle(testbed.cfg.max_events);
        let env = ForwardEnv {
            topo,
            bgp: sim.sim(),
            down: &[],
        };
        let kept = topo
            .client_nodes()
            .filter(|c| catchment(&env, cdn, *c, prefix.addr_at(1)) == Some(attacked))
            .count();
        println!(
            "{:<22} {:>12} {:>15.1}%",
            "withdraw",
            kept,
            100.0 * kept as f64 / total_clients as f64
        );
    }

    println!(
        "\nPrepending drains the catchment gradually — clients whose routes are chosen on \
         LOCAL_PREF (direct peers/customers) stick to ams no matter how long the path gets, \
         which is exactly the control residue Appendix C.1 dissects. Withdrawal clears \
         everyone but gives up the site entirely (and costs a convergence transient, \
         Figure 3)."
    );

    // --- Does shedding the catchment shed the *load*? ---
    // Replay each prepend level against the demand-driven data plane: a
    // 6x volumetric surge concentrated in ams's home region, demand
    // following the (prepend-shrunk) catchment tick by tick.
    let tcfg = TrafficConfig::default();
    let region = REGIONS
        .iter()
        .position(|r| r.name == "amsterdam")
        .expect("amsterdam region");
    println!(
        "\nDynamic replay (6x surge in amsterdam at 60s):\n{:<22} {:>14} {:>12}",
        "announcement", "ams peak util", "shed"
    );
    let tick = SimDuration::from_secs_f64(tcfg.tick_interval_s);
    let t_surge = SimTime::ZERO + SimDuration::from_secs(60);
    let horizon = SimTime::ZERO + SimDuration::from_secs(600);
    for step in [0u8, 3, 8] {
        let mut sim = Standalone::new(topo, testbed.cfg.timing.clone(), &testbed.rng);
        for site in cdn.sites() {
            let cfg = if site == attacked {
                OriginConfig::prepended(step)
            } else {
                OriginConfig::plain()
            };
            sim.announce(cdn.node(site), prefix, cfg);
        }
        sim.run_to_idle(testbed.cfg.max_events);
        let env = ForwardEnv {
            topo,
            bgp: sim.sim(),
            down: &[],
        };
        let mut tr = TrafficSim::new(&tcfg, topo, cdn, &testbed.rng, Steering::Catchment);
        tr.add_surge(Surge {
            region: Some(region),
            factor: 6.0,
            start_s: 60.0,
            ramp_s: 10.0,
            duration_s: 600.0,
        });
        let mut now = SimTime::ZERO;
        while now <= horizon {
            tr.on_tick(now, t_surge, &testbed.rng, |c| {
                catchment(&env, cdn, c, prefix.addr_at(1))
            });
            now += tick;
        }
        let s = tr.summary(&[]);
        println!(
            "{:<22} {:>13.2}x {:>11.1}%",
            format!("prepend x{step}"),
            s.peak_utilization_after[attacked.index()],
            100.0 * s.shed_fraction()
        );
    }
    println!(
        "\nThe catchment numbers above translate directly into load: each prepend level \
         moves a chunk of the attack volume onto other sites' capacity, trading ams \
         overload for fleet-wide utilization — without ever touching DNS or withdrawing \
         the announcement."
    );
}
