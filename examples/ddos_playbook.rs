//! An anycast "playbook" under attack (the use case of Rizvi et al.,
//! USENIX Security '22, which the paper cites as using techniques similar
//! to proactive-prepending): a site is being overwhelmed, and the operator
//! wants to *shed* most of its catchment onto other sites without taking it
//! fully offline — the flip side of failover.
//!
//! The knob is the same as the paper's §4: AS-path prepending at the
//! attacked site (instead of at the backups). We sweep the prepend count
//! and watch the site's catchment drain, then compare with the blunter
//! instrument of withdrawing entirely.
//!
//! ```sh
//! cargo run --release --example ddos_playbook
//! ```

use bobw::bgp::{OriginConfig, Standalone};
use bobw::core::{ExperimentConfig, Testbed};
use bobw::dataplane::{catchment, ForwardEnv};
use bobw::net::Prefix;

fn main() {
    let testbed = Testbed::new(ExperimentConfig::quick(31));
    let topo = &testbed.topo;
    let cdn = &testbed.cdn;
    let prefix: Prefix = "184.164.247.0/24".parse().unwrap();
    let attacked = cdn.by_name("ams").unwrap();

    println!("== DDoS playbook: shed load from 'ams' by self-prepending ==\n");
    println!(
        "{:<22} {:>12} {:>16}",
        "announcement", "ams clients", "share of clients"
    );

    let total_clients = topo.client_nodes().count();
    for step in [0u8, 1, 2, 3, 5, 8] {
        let mut sim = Standalone::new(topo, testbed.cfg.timing.clone(), &testbed.rng);
        for site in cdn.sites() {
            let cfg = if site == attacked {
                OriginConfig::prepended(step)
            } else {
                OriginConfig::plain()
            };
            sim.announce(cdn.node(site), prefix, cfg);
        }
        sim.run_to_idle(testbed.cfg.max_events);
        let env = ForwardEnv {
            topo,
            bgp: sim.sim(),
            down: &[],
        };
        let kept = topo
            .client_nodes()
            .filter(|c| catchment(&env, cdn, *c, prefix.addr_at(1)) == Some(attacked))
            .count();
        println!(
            "{:<22} {:>12} {:>15.1}%",
            format!("prepend x{step}"),
            kept,
            100.0 * kept as f64 / total_clients as f64
        );
    }

    // The blunt instrument: withdraw entirely.
    {
        let mut sim = Standalone::new(topo, testbed.cfg.timing.clone(), &testbed.rng);
        for site in cdn.sites() {
            if site != attacked {
                sim.announce(cdn.node(site), prefix, OriginConfig::plain());
            }
        }
        sim.run_to_idle(testbed.cfg.max_events);
        let env = ForwardEnv {
            topo,
            bgp: sim.sim(),
            down: &[],
        };
        let kept = topo
            .client_nodes()
            .filter(|c| catchment(&env, cdn, *c, prefix.addr_at(1)) == Some(attacked))
            .count();
        println!(
            "{:<22} {:>12} {:>15.1}%",
            "withdraw",
            kept,
            100.0 * kept as f64 / total_clients as f64
        );
    }

    println!(
        "\nPrepending drains the catchment gradually — clients whose routes are chosen on \
         LOCAL_PREF (direct peers/customers) stick to ams no matter how long the path gets, \
         which is exactly the control residue Appendix C.1 dissects. Withdrawal clears \
         everyone but gives up the site entirely (and costs a convergence transient, \
         Figure 3)."
    );
}
