//! Load-aware mapping vs anycast's economics (§3's control motivation):
//! assign heavy-tailed client demand to capacity-constrained sites, fail
//! one, and compare against where pure anycast would have dumped the load.
//!
//! The second half replays the same comparison as a *time process* with
//! the demand-driven data plane (`bobw::traffic`): diurnal demand plus a
//! flash crowd, ticked through a site failure, anycast catchment steering
//! against the periodic load-aware DNS controller.
//!
//! ```sh
//! cargo run --release --example load_balance
//! ```

use bobw::bgp::{OriginConfig, Standalone};
use bobw::core::{anycast_load, assign_load_aware, ExperimentConfig, LoadModel, Testbed};
use bobw::dataplane::{catchment, ForwardEnv};
use bobw::event::{SimDuration, SimTime};
use bobw::net::Prefix;
use bobw::traffic::{Steering, Surge, TrafficConfig, TrafficSim};

fn main() {
    let testbed = Testbed::new(ExperimentConfig::quick(64));
    let topo = &testbed.topo;
    let cdn = &testbed.cdn;
    let model = LoadModel::sample(topo, &testbed.rng);
    println!(
        "== Load balancing: {} clients, total demand {:.0} units ==\n",
        model.demands().len(),
        model.total()
    );

    // --- Where does pure anycast put the load? ---
    let prefix: Prefix = "184.164.247.0/24".parse().unwrap();
    let mut sim = Standalone::new(topo, testbed.cfg.timing.clone(), &testbed.rng);
    for site in cdn.sites() {
        sim.announce(cdn.node(site), prefix, OriginConfig::plain());
    }
    sim.run_to_idle(testbed.cfg.max_events);
    let env = ForwardEnv {
        topo,
        bgp: sim.sim(),
        down: &[],
    };
    let bgp_load = anycast_load(&env, cdn, &model, prefix.addr_at(1));

    // --- The CDN's load-aware assignment under 1.3x fair-share capacity. ---
    let fair = model.total() / cdn.num_sites() as f64;
    let caps = vec![fair * 1.3; cdn.num_sites()];
    let managed = assign_load_aware(topo, cdn, &model, &caps);

    println!(
        "{:<6} {:>14} {:>14} {:>10}",
        "site", "anycast load", "managed load", "capacity"
    );
    for site in cdn.sites() {
        println!(
            "{:<6} {:>14.0} {:>14.0} {:>10.0}",
            cdn.name(site),
            bgp_load[site.index()],
            managed.load[site.index()],
            caps[site.index()]
        );
    }
    let anycast_imbalance = {
        let mean = bgp_load.iter().sum::<f64>() / bgp_load.len() as f64;
        bgp_load.iter().fold(0.0f64, |a, b| a.max(*b)) / mean
    };
    println!(
        "\nimbalance (max/mean): anycast {:.2} vs managed {:.2} — anycast overloads whichever \
         site BGP's economics happen to favour; DNS control packs to capacity.",
        anycast_imbalance,
        managed.imbalance()
    );

    // --- Fail the hottest site; load-aware mapping re-packs. ---
    let hottest = cdn
        .sites()
        .max_by(|a, b| {
            managed.load[a.index()]
                .partial_cmp(&managed.load[b.index()])
                .unwrap()
        })
        .unwrap();
    let mut caps_after = caps.clone();
    caps_after[hottest.index()] = 0.0;
    let after = assign_load_aware(topo, cdn, &model, &caps_after);
    println!(
        "\nAfter failing '{}' (capacity 0): survivors carry {:.0} units, unplaced {:.0} \
         ({:.1}% of demand); imbalance {:.2}.",
        cdn.name(hottest),
        after.load.iter().sum::<f64>(),
        after.unplaced,
        100.0 * after.unplaced / model.total(),
        after.imbalance()
    );
    println!(
        "This re-pack is what the paper's techniques make *safe* to rely on: reactive-anycast \
         and proactive-prepending keep the BGP layer available while DNS moves the load."
    );

    // --- The same story as a time process: demand-driven data plane. ---
    // Diurnal demand plus a 2x flash crowd, ticked through the hottest
    // site's failure at t = 600 s. Catchment steering follows wherever
    // BGP delivers; the DNS controller re-packs within capacity every
    // few ticks (resteers adopt after a TTL lag).
    let tcfg = TrafficConfig::default();
    let mut any = TrafficSim::new(&tcfg, topo, cdn, &testbed.rng, Steering::Catchment);
    let mut dns = TrafficSim::new(&tcfg, topo, cdn, &testbed.rng, Steering::Dns);
    let surge = Surge {
        region: None,
        factor: 2.0,
        start_s: 300.0,
        ramp_s: 30.0,
        duration_s: 600.0,
    };
    any.add_surge(surge.clone());
    dns.add_surge(surge);

    let tick = SimDuration::from_secs_f64(tcfg.tick_interval_s);
    let t_fail = SimTime::ZERO + SimDuration::from_secs(600);
    let horizon = SimTime::ZERO + SimDuration::from_secs(1200);
    let down_nodes = [cdn.node(hottest)];
    let mut failed = false;
    let mut now = SimTime::ZERO;
    let addr = prefix.addr_at(1);
    while now <= horizon {
        if !failed && now >= t_fail {
            any.site_down(hottest);
            dns.site_down(hottest);
            failed = true;
        }
        let env = ForwardEnv {
            topo,
            bgp: sim.sim(),
            down: if failed { &down_nodes } else { &[] },
        };
        any.on_tick(now, t_fail, &testbed.rng, |c| catchment(&env, cdn, c, addr));
        dns.on_tick(now, t_fail, &testbed.rng, |_| None);
        now += tick;
    }
    let sa = any.summary(&[]);
    let sd = dns.summary(&[]);
    println!(
        "\nDynamic replay (flash crowd x2 at 300s, '{}' fails at 600s, {:.0}s ticks):",
        cdn.name(hottest),
        tcfg.tick_interval_s
    );
    println!(
        "{:<18} {:>16} {:>16} {:>12}",
        "steering", "peak util before", "peak util after", "shed"
    );
    println!(
        "{:<18} {:>15.2}x {:>15.2}x {:>11.1}%",
        "anycast catchment",
        sa.peak_before(),
        sa.peak_after(),
        100.0 * sa.shed_fraction()
    );
    println!(
        "{:<18} {:>15.2}x {:>15.2}x {:>11.1}% ({} resteers)",
        "load-aware DNS",
        sd.peak_before(),
        sd.peak_after(),
        100.0 * sd.shed_fraction(),
        sd.resteers
    );
}
