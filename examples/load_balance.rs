//! Load-aware mapping vs anycast's economics (§3's control motivation):
//! assign heavy-tailed client demand to capacity-constrained sites, fail
//! one, and compare against where pure anycast would have dumped the load.
//!
//! ```sh
//! cargo run --release --example load_balance
//! ```

use bobw::bgp::{OriginConfig, Standalone};
use bobw::core::{anycast_load, assign_load_aware, ExperimentConfig, LoadModel, Testbed};
use bobw::dataplane::ForwardEnv;
use bobw::net::Prefix;

fn main() {
    let testbed = Testbed::new(ExperimentConfig::quick(64));
    let topo = &testbed.topo;
    let cdn = &testbed.cdn;
    let model = LoadModel::sample(topo, &testbed.rng);
    println!(
        "== Load balancing: {} clients, total demand {:.0} units ==\n",
        model.demands().len(),
        model.total()
    );

    // --- Where does pure anycast put the load? ---
    let prefix: Prefix = "184.164.247.0/24".parse().unwrap();
    let mut sim = Standalone::new(topo, testbed.cfg.timing.clone(), &testbed.rng);
    for site in cdn.sites() {
        sim.announce(cdn.node(site), prefix, OriginConfig::plain());
    }
    sim.run_to_idle(testbed.cfg.max_events);
    let env = ForwardEnv {
        topo,
        bgp: sim.sim(),
        down: &[],
    };
    let bgp_load = anycast_load(&env, cdn, &model, prefix.addr_at(1));

    // --- The CDN's load-aware assignment under 1.3x fair-share capacity. ---
    let fair = model.total() / cdn.num_sites() as f64;
    let caps = vec![fair * 1.3; cdn.num_sites()];
    let managed = assign_load_aware(topo, cdn, &model, &caps);

    println!(
        "{:<6} {:>14} {:>14} {:>10}",
        "site", "anycast load", "managed load", "capacity"
    );
    for site in cdn.sites() {
        println!(
            "{:<6} {:>14.0} {:>14.0} {:>10.0}",
            cdn.name(site),
            bgp_load[site.index()],
            managed.load[site.index()],
            caps[site.index()]
        );
    }
    let anycast_imbalance = {
        let mean = bgp_load.iter().sum::<f64>() / bgp_load.len() as f64;
        bgp_load.iter().fold(0.0f64, |a, b| a.max(*b)) / mean
    };
    println!(
        "\nimbalance (max/mean): anycast {:.2} vs managed {:.2} — anycast overloads whichever \
         site BGP's economics happen to favour; DNS control packs to capacity.",
        anycast_imbalance,
        managed.imbalance()
    );

    // --- Fail the hottest site; load-aware mapping re-packs. ---
    let hottest = cdn
        .sites()
        .max_by(|a, b| {
            managed.load[a.index()]
                .partial_cmp(&managed.load[b.index()])
                .unwrap()
        })
        .unwrap();
    let mut caps_after = caps.clone();
    caps_after[hottest.index()] = 0.0;
    let after = assign_load_aware(topo, cdn, &model, &caps_after);
    println!(
        "\nAfter failing '{}' (capacity 0): survivors carry {:.0} units, unplaced {:.0} \
         ({:.1}% of demand); imbalance {:.2}.",
        cdn.name(hottest),
        after.load.iter().sum::<f64>(),
        after.unplaced,
        100.0 * after.unplaced / model.total(),
        after.imbalance()
    );
    println!(
        "This re-pack is what the paper's techniques make *safe* to rely on: reactive-anycast \
         and proactive-prepending keep the BGP layer available while DNS moves the load."
    );
}
