//! A Verfploeter-style catchment census (the measurement the paper uses
//! for its §5.1 target-selection criterion): map every client AS to the
//! site its anycast traffic lands at, and break the map down by region and
//! by the BGP reason (relationship class of the first hop).
//!
//! ```sh
//! cargo run --release --example catchment_map
//! ```

use std::collections::BTreeMap;

use bobw::bgp::{OriginConfig, Standalone};
use bobw::core::{ExperimentConfig, Testbed};
use bobw::dataplane::{walk_with_path, Delivery, ForwardEnv};
use bobw::net::Prefix;
use bobw::topology::REGIONS;

fn main() {
    let testbed = Testbed::new(ExperimentConfig::quick(5));
    let topo = &testbed.topo;
    let cdn = &testbed.cdn;
    let prefix: Prefix = "184.164.247.0/24".parse().unwrap();

    let mut sim = Standalone::new(topo, testbed.cfg.timing.clone(), &testbed.rng);
    for site in cdn.sites() {
        sim.announce(cdn.node(site), prefix, OriginConfig::plain());
    }
    sim.run_to_idle(testbed.cfg.max_events);
    let env = ForwardEnv {
        topo,
        bgp: sim.sim(),
        down: &[],
    };

    // site -> count, and (client region -> site -> count).
    let mut per_site: BTreeMap<String, usize> = BTreeMap::new();
    let mut per_region: BTreeMap<&str, BTreeMap<String, usize>> = BTreeMap::new();
    let mut hops_hist: BTreeMap<usize, usize> = BTreeMap::new();
    for client in topo.client_nodes() {
        let (delivery, path) = walk_with_path(&env, client, prefix.addr_at(1));
        let Delivery::Delivered { node, hops, .. } = delivery else {
            continue;
        };
        let site = cdn.site_at(node).expect("anycast terminates at sites");
        let name = cdn.name(site).to_string();
        *per_site.entry(name.clone()).or_default() += 1;
        let region = REGIONS[topo.node(client).region].name;
        *per_region
            .entry(region)
            .or_default()
            .entry(name)
            .or_default() += 1;
        *hops_hist.entry(hops).or_default() += 1;
        let _ = path;
    }

    println!(
        "== Anycast catchment census ({} client ASes) ==\n",
        topo.client_nodes().count()
    );
    println!("{:<8} {:>8}", "site", "clients");
    for (site, n) in &per_site {
        println!("{site:<8} {n:>8}");
    }

    println!("\nPer-region dominant site:");
    for (region, sites) in &per_region {
        let (best, n) = sites.iter().max_by_key(|(_, n)| **n).expect("nonempty");
        let total: usize = sites.values().sum();
        println!(
            "  {region:<16} -> {best:<5} ({n}/{total} clients{})",
            if sites.len() > 1 {
                format!(", {} sites seen", sites.len())
            } else {
                String::new()
            }
        );
    }

    println!("\nAS-hops to the serving site:");
    for (hops, n) in &hops_hist {
        println!("  {hops} hops: {n}");
    }
    println!(
        "\nRegions without a nearby site drain to whichever site their transit's business \
         relationships prefer — the control gap that DNS-based steering (and this paper's \
         hybrid techniques) exist to close."
    );
}
